(* Declarative parameter sweeps: the "heavy traffic" front end.

   The paper's claims are statements about *shapes over (n, d, lambda)*
   — flooding in Theta(log n), coverage improving with d, lambda
   normalizing away — but the CLI runs one experiment cell at a time.
   This module turns a declarative grid config (schema
   churnet-sweep-config/1, parsed with Util.Json) into:

     1. registry cells invoked by id, each with its own seed and scale
        from the config (Table 1 regeneration in one command);
     2. grid cells (model x n x d x lambda x seed), each a
        checkpointable work unit scheduled over Parallel.map — so the
        ambient Util.Checkpoint journal memoizes completed cells and a
        SIGKILL'd multi-hour sweep resumes byte-identically;
     3. one churnet-sweep/1 trajectory document aggregating every
        per-cell payload, plus Asciiplot shape figures (flooding time
        vs log n, coverage vs d).

   Everything in the trajectory document and the rendered text is a
   deterministic function of the config: no wall-clock, domain counts or
   file paths leak in, which is what makes the serial, multi-domain and
   crash-resumed outputs byte-comparable.  Per-cell telemetry (timing,
   RSS attribution) is returned alongside for the CLI to report on
   stderr. *)

module Json = Churnet_util.Json
module Prng = Churnet_util.Prng
module Parallel = Churnet_util.Parallel
module Table = Churnet_util.Table
module Stats = Churnet_util.Stats
module Asciiplot = Churnet_util.Asciiplot
module Models = Churnet_core.Models
module Flood = Churnet_core.Flood
module Stream_stats = Churnet_graph.Stream_stats

let config_schema = "churnet-sweep-config/1"
let output_schema = "churnet-sweep/1"

(* --- configuration ---------------------------------------------------- *)

type grid = {
  models : Models.kind list;
  ns : int list;
  ds : int list;
  lambdas : float list;
  grid_seeds : int list;
}

type experiments = { ids : string list; exp_seeds : int list; exp_scale : Scale.t }

type config = { name : string; grid : grid option; experiments : experiments option }

type cell = { model : Models.kind; n : int; d : int; lambda : float; cell_seed : int }

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let get_member name json =
  match Json.member name json with
  | Some v -> v
  | None -> bad "missing field %S" name

let get_string what json =
  match Json.as_string json with Some s -> s | None -> bad "%s: expected a string" what

(* An axis is a non-empty duplicate-free JSON array: an empty axis
   silently expands to zero cells (a sweep that "succeeds" having
   measured nothing), and a duplicate value expands to duplicate cells
   that would collide as work units. *)
let get_axis what elem json =
  let items = Json.as_list json in
  if items = [] then bad "axis %S is empty (it would expand to zero cells)" what;
  let values = List.map (elem what) items in
  let rec dup_check seen = function
    | [] -> ()
    | v :: rest ->
        if List.mem v seen then
          bad "axis %S repeats a value (duplicate cells would collide)" what
        else dup_check (v :: seen) rest
  in
  dup_check [] values;
  values

let int_elem what json =
  match Json.as_int json with Some v -> v | None -> bad "axis %S: expected integers" what

let float_elem what json =
  match Json.as_float json with
  | Some v -> v
  | None -> bad "axis %S: expected numbers" what

let model_elem what json =
  let s = get_string what json in
  match Models.kind_of_string s with
  | Some k -> k
  | None -> bad "axis %S: unknown model %S (use SDG/SDGR/PDG/PDGR)" what s

let id_elem what json =
  let s = get_string what json in
  match Registry.find s with
  | Some e -> e.Registry.id
  | None -> bad "axis %S: unknown experiment id %S (try `churnet list`)" what s

let parse_grid json =
  let models = get_axis "grid.models" model_elem (get_member "models" json) in
  let ns = get_axis "grid.n" int_elem (get_member "n" json) in
  let ds = get_axis "grid.d" int_elem (get_member "d" json) in
  let lambdas =
    match Json.member "lambda" json with
    | None -> [ 1.0 ]
    | Some axis -> get_axis "grid.lambda" float_elem axis
  in
  let grid_seeds = get_axis "grid.seeds" int_elem (get_member "seeds" json) in
  List.iter (fun n -> if n < 2 then bad "grid.n: %d is too small (need n >= 2)" n) ns;
  List.iter (fun d -> if d < 1 then bad "grid.d: %d is not a positive degree" d) ds;
  List.iter
    (fun l ->
      if not (Float.is_finite l) || l <= 0. then
        bad "grid.lambda: rates must be finite and positive")
    lambdas;
  (* A lambda other than the paper's normalization only parametrizes the
     Poisson models; combined with a streaming model it would expand to
     cells Models.create must refuse. *)
  if
    List.exists Models.is_streaming models
    && List.exists (fun l -> l <> 1.0) lambdas
  then
    bad
      "grid.lambda: values other than 1 require Poisson models only \
       (streaming churn has no arrival rate)";
  { models; ns; ds; lambdas; grid_seeds }

let parse_experiments json =
  let ids = get_axis "experiments.ids" id_elem (get_member "ids" json) in
  let exp_seeds =
    match Json.member "seeds" json with
    | None -> [ 42 ]
    | Some axis -> get_axis "experiments.seeds" int_elem axis
  in
  let exp_scale =
    match Json.member "scale" json with
    | None -> Scale.Smoke
    | Some s -> (
        let s = get_string "experiments.scale" s in
        match Scale.of_string s with
        | Some v -> v
        | None ->
            bad "experiments.scale: unknown scale %S (valid: %s)" s
              (String.concat ", " Scale.names))
  in
  { ids; exp_seeds; exp_scale }

let config_of_json json =
  try
    (match Json.member "schema" json with
    | Some s when Json.as_string s = Some config_schema -> ()
    | Some s ->
        bad "schema is %s, expected %S"
          (match Json.as_string s with Some v -> Printf.sprintf "%S" v | None -> "not a string")
          config_schema
    | None -> bad "missing field %S" "schema");
    let name = get_string "name" (get_member "name" json) in
    if name = "" then bad "name must be non-empty";
    let grid = Option.map parse_grid (Json.member "grid" json) in
    let experiments = Option.map parse_experiments (Json.member "experiments" json) in
    if grid = None && experiments = None then
      bad "config declares neither a \"grid\" nor an \"experiments\" section";
    Ok { name; grid; experiments }
  with Bad msg -> Error (Printf.sprintf "sweep config: %s" msg)

let config_of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error (Printf.sprintf "sweep config: cannot read %s" e)
  | text -> (
      match Json.of_string text with
      | Error e -> Error (Printf.sprintf "sweep config %s: %s" path e)
      | Ok json -> config_of_json json)

(* The canonical (parsed, defaults filled in) form of the config: echoed
   into the trajectory document so a sweep file names its own grid, and
   digested by the CLI into the checkpoint-journal identity line. *)
let config_to_json config =
  let axis to_j values = Json.Arr (List.map to_j values) in
  Json.Obj
    ([ ("schema", Json.String config_schema); ("name", Json.String config.name) ]
    @ (match config.grid with
      | None -> []
      | Some g ->
          [
            ( "grid",
              Json.Obj
                [
                  ("models", axis (fun k -> Json.String (Models.kind_name k)) g.models);
                  ("n", axis (fun n -> Json.Int n) g.ns);
                  ("d", axis (fun d -> Json.Int d) g.ds);
                  ("lambda", axis Json.of_finite g.lambdas);
                  ("seeds", axis (fun s -> Json.Int s) g.grid_seeds);
                ] );
          ])
    @
    match config.experiments with
    | None -> []
    | Some e ->
        [
          ( "experiments",
            Json.Obj
              [
                ("ids", axis (fun id -> Json.String id) e.ids);
                ("seeds", axis (fun s -> Json.Int s) e.exp_seeds);
                ("scale", Json.String (Scale.to_string e.exp_scale));
              ] );
        ])

(* --- planning --------------------------------------------------------- *)

(* Expansion order is part of the format: cells are work units keyed by
   their index in this list, so the order must be a pure function of the
   config for a journal written by one run to resume another. *)
let cells config =
  match config.grid with
  | None -> []
  | Some g ->
      List.concat_map
        (fun model ->
          List.concat_map
            (fun n ->
              List.concat_map
                (fun d ->
                  List.concat_map
                    (fun lambda ->
                      List.map
                        (fun cell_seed -> { model; n; d; lambda; cell_seed })
                        g.grid_seeds)
                    g.lambdas)
                g.ds)
            g.ns)
        g.models

let exp_cells config =
  match config.experiments with
  | None -> []
  | Some e ->
      List.concat_map (fun id -> List.map (fun seed -> (id, seed)) e.exp_seeds) e.ids

(* --- per-cell measurement --------------------------------------------- *)

type metrics = {
  population : int;
  isolated : int;
  max_degree : int;
  mean_degree : float;
  rounds : int;
  half_coverage_round : int option;
  completion_round : int option;
  completed : bool;
  extinct : bool;
  peak_coverage : float;
  final_coverage : float;
}

(* Same budgets as F1: completion is only meaningful for the
   regenerating models (Theorems 3.16/4.20 give Theta(log n)); the
   non-regenerating ones get the 50%-coverage budget of Theorem 3.8. *)
let round_budget model n =
  let ln = log (float_of_int n) in
  if Models.regenerates model then int_of_float (20. *. ln) + 40
  else int_of_float (6. *. ln) + 20

let run_cell cell =
  let rng = Prng.create cell.cell_seed in
  let m =
    Models.create ~rng ~lambda:cell.lambda cell.model ~n:cell.n ~d:cell.d
  in
  Models.warm_up_batch m;
  let stats = Stream_stats.collect (Models.graph m) in
  let tr = Models.flood ~max_rounds:(round_budget cell.model cell.n) m in
  let half_coverage_round =
    let hit = ref None in
    Array.iteri
      (fun i inf ->
        let pop = tr.Flood.population_per_round.(i) in
        if !hit = None && pop > 0 && 2 * inf >= pop then hit := Some i)
      tr.Flood.informed_per_round;
    !hit
  in
  let final_coverage =
    if tr.Flood.final_population = 0 then nan
    else float_of_int tr.Flood.final_informed /. float_of_int tr.Flood.final_population
  in
  {
    population = stats.Stream_stats.population;
    isolated = stats.Stream_stats.isolated;
    max_degree = stats.Stream_stats.max_degree;
    mean_degree = stats.Stream_stats.mean_degree;
    rounds = tr.Flood.rounds;
    half_coverage_round;
    completion_round = tr.Flood.completion_round;
    completed = tr.Flood.completed;
    extinct = tr.Flood.extinct;
    peak_coverage = tr.Flood.peak_coverage;
    final_coverage;
  }

(* --- running ---------------------------------------------------------- *)

type exp_result = {
  exp_id : string;
  exp_seed : int;
  report : Report.t;
  telemetry : Telemetry.t;
}

type outcome = {
  config : config;
  exp_results : exp_result list;
  cell_results : (cell * metrics) array;
}

let run ?(progress = fun _ -> ()) config =
  (* Registry cells run sequentially: their internal Parallel.map calls
     are what the journal memoizes, and journal call-site numbering
     relies on sequential orchestration.  The grid then goes through one
     flat Parallel.map — every cell a journaled work unit, fanned out
     across domains. *)
  let exp_results =
    List.map
      (fun (id, seed) ->
        progress (Printf.sprintf "cell %s seed %d" id seed);
        let scale =
          match config.experiments with
          | Some e -> e.exp_scale
          | None -> Scale.Smoke
        in
        let report, telemetry =
          Telemetry.measure ~seed ~scale (fun () -> Registry.run_cell ~id ~seed ~scale)
        in
        { exp_id = id; exp_seed = seed; report; telemetry })
      (exp_cells config)
  in
  let grid_cells = Array.of_list (cells config) in
  if Array.length grid_cells > 0 then
    progress (Printf.sprintf "grid: %d cells" (Array.length grid_cells));
  let grid_metrics = Parallel.map run_cell grid_cells in
  {
    config;
    exp_results;
    cell_results = Array.map2 (fun c m -> (c, m)) grid_cells grid_metrics;
  }

let all_hold outcome =
  List.for_all (fun e -> Report.all_hold e.report) outcome.exp_results

(* --- figures ---------------------------------------------------------- *)

(* Group the cell results by a key, preserving first-seen key order so
   series come out in expansion order. *)
let group_by key results =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun ((c, _) as r) ->
      let k = key c in
      (match Hashtbl.find_opt tbl k with
      | None ->
          order := k :: !order;
          Hashtbl.replace tbl k [ r ]
      | Some rs -> Hashtbl.replace tbl k (r :: rs)))
    results;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let mean_over values =
  let acc = Stats.Acc.create () in
  List.iter (fun v -> Stats.Acc.add acc v) values;
  Stats.Acc.mean acc

let label_lambda lambda = if lambda = 1.0 then "" else Printf.sprintf " lam=%g" lambda

(* Flooding time vs n (log x): the Theta(log n) shape.  One series per
   (model, d, lambda); each point averages the per-seed flooding rounds
   at one n — completion rounds for the regenerating models, rounds to
   50% coverage otherwise. *)
let flood_time_figure outcome =
  match outcome.config.grid with
  | Some g when List.length g.ns >= 2 ->
      let series =
        group_by (fun c -> (c.model, c.d, c.lambda)) outcome.cell_results
        |> List.map (fun ((model, d, lambda), results) ->
               let points =
                 List.filter_map
                   (fun n ->
                     let rounds =
                       List.filter_map
                         (fun (c, m) ->
                           if c.n <> n then None
                           else
                             Option.map float_of_int
                               (if Models.regenerates model then m.completion_round
                                else m.half_coverage_round))
                         results
                     in
                     if rounds = [] then None
                     else Some (float_of_int n, mean_over rounds))
                   g.ns
               in
               {
                 Asciiplot.label =
                   Printf.sprintf "%s d=%d%s%s" (Models.kind_name model) d
                     (label_lambda lambda)
                     (if Models.regenerates model then " (complete)" else " (50% cov)");
                 points = Array.of_list points;
               })
        |> List.filter (fun s -> Array.length s.Asciiplot.points > 0)
      in
      if series = [] then None
      else
        Some
          (Asciiplot.plot ~logx:true ~title:"sweep: flooding rounds vs n" ~xlabel:"n"
             ~ylabel:"rounds" series)
  | _ -> None

(* Coverage vs d: one series per (model, n, lambda), averaging the
   per-seed peak coverage at each degree. *)
let coverage_figure outcome =
  match outcome.config.grid with
  | Some g when List.length g.ds >= 2 ->
      let series =
        group_by (fun c -> (c.model, c.n, c.lambda)) outcome.cell_results
        |> List.map (fun ((model, n, lambda), results) ->
               let points =
                 List.filter_map
                   (fun d ->
                     let covs =
                       List.filter_map
                         (fun (c, m) ->
                           if c.d <> d || Float.is_nan m.peak_coverage then None
                           else Some m.peak_coverage)
                         results
                     in
                     if covs = [] then None
                     else Some (float_of_int d, mean_over covs))
                   g.ds
               in
               {
                 Asciiplot.label =
                   Printf.sprintf "%s n=%d%s" (Models.kind_name model) n
                     (label_lambda lambda);
                 points = Array.of_list points;
               })
        |> List.filter (fun s -> Array.length s.Asciiplot.points > 0)
      in
      if series = [] then None
      else
        Some
          (Asciiplot.plot ~title:"sweep: peak coverage vs d" ~xlabel:"d"
             ~ylabel:"peak coverage" series)
  | _ -> None

let figures outcome =
  List.filter_map Fun.id [ flood_time_figure outcome; coverage_figure outcome ]

(* --- aggregation ------------------------------------------------------ *)

let int_opt = function Some v -> Json.Int v | None -> Json.Null

let cell_to_json (c, m) =
  Json.Obj
    [
      ("model", Json.String (Models.kind_name c.model));
      ("n", Json.Int c.n);
      ("d", Json.Int c.d);
      ("lambda", Json.of_finite c.lambda);
      ("seed", Json.Int c.cell_seed);
      ("population", Json.Int m.population);
      ("isolated", Json.Int m.isolated);
      ("max_degree", Json.Int m.max_degree);
      ("mean_degree", Json.of_finite m.mean_degree);
      ("rounds", Json.Int m.rounds);
      ("half_coverage_round", int_opt m.half_coverage_round);
      ("completion_round", int_opt m.completion_round);
      ("completed", Json.Bool m.completed);
      ("extinct", Json.Bool m.extinct);
      ("peak_coverage", Json.of_finite m.peak_coverage);
      ("final_coverage", Json.of_finite m.final_coverage);
    ]

(* The churnet-sweep/1 trajectory document.  Deliberately free of
   telemetry, domain counts and paths: the same config must produce the
   same bytes serially, at any --domains, and across a crash/resume. *)
let to_json outcome =
  Json.Obj
    [
      ("schema", Json.String output_schema);
      ("name", Json.String outcome.config.name);
      ("config", config_to_json outcome.config);
      ( "experiments",
        Json.Arr
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("seed", Json.Int e.exp_seed);
                   ("report", Report.to_json e.report);
                 ])
             outcome.exp_results) );
      ("cells", Json.Arr (Array.to_list (Array.map cell_to_json outcome.cell_results)));
      ("figures", Json.Arr (List.map (fun f -> Json.String f) (figures outcome)));
    ]

(* --- text rendering --------------------------------------------------- *)

let fmt_round = function Some r -> string_of_int r | None -> "-"

let grid_table outcome =
  let table =
    Table.create
      [
        "model"; "n"; "d"; "lambda"; "seed"; "pop"; "isolated"; "mean deg";
        "50% cov"; "complete"; "peak cov";
      ]
  in
  Array.iter
    (fun (c, m) ->
      Table.add_row table
        [
          Models.kind_name c.model;
          string_of_int c.n;
          string_of_int c.d;
          Table.fmt_float ~digits:2 c.lambda;
          string_of_int c.cell_seed;
          string_of_int m.population;
          string_of_int m.isolated;
          Table.fmt_float ~digits:2 m.mean_degree;
          fmt_round m.half_coverage_round;
          fmt_round m.completion_round;
          Table.fmt_pct m.peak_coverage;
        ])
    outcome.cell_results;
  table

let exp_summary outcome =
  let table = Table.create [ "id"; "seed"; "experiment"; "result" ] in
  List.iter
    (fun e ->
      match Report.summary_row e.report with
      | id :: rest -> Table.add_row table ((id :: string_of_int e.exp_seed :: rest))
      | [] -> ())
    outcome.exp_results;
  table

let render outcome =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "== sweep %s ==\n\n" outcome.config.name);
  List.iter (fun e -> Buffer.add_string buf (Report.render e.report)) outcome.exp_results;
  if outcome.exp_results <> [] then begin
    Buffer.add_string buf (Table.render (exp_summary outcome));
    Buffer.add_char buf '\n'
  end;
  if Array.length outcome.cell_results > 0 then begin
    Buffer.add_string buf (Table.render (grid_table outcome));
    Buffer.add_char buf '\n';
    List.iter
      (fun fig ->
        Buffer.add_string buf fig;
        Buffer.add_char buf '\n')
      (figures outcome)
  end;
  Buffer.contents buf
