(* S1: the paper's "we choose time units such that lambda = 1" (Section
   1.1) — is the normalization really without loss of generality?

   With arrival rate lambda and death rate lambda/n, the *graph process*
   is a time-rescaled copy of the lambda = 1 process, but flooding still
   takes one unit of time per hop, so lambda is the number of churn
   events per message delay.  Structural observables (expansion,
   isolated fraction) must be lambda-invariant; flooding rounds should
   stay O(log n) as long as lambda stays far below n (the per-hop churn
   is o(n)). *)

open Churnet_core
module Prng = Churnet_util.Prng
module Table = Churnet_util.Table
module Stats = Churnet_util.Stats
module Probe = Churnet_expansion.Probe
module Snapshot = Churnet_graph.Snapshot

let s1 ~seed ~scale =
  let n = Scale.pick scale ~smoke:300 ~standard:1500 ~full:5000 in
  let trials = Scale.pick scale ~smoke:2 ~standard:4 ~full:10 in
  let d = 10 in
  let rng = Prng.create seed in
  let lambdas = [ 0.25; 1.0; 4.0; 16.0 ] in
  let table =
    Table.create
      [ "lambda"; "population"; "isolated frac (PDG)"; "min expansion (PDGR)";
        "PDGR flood rounds"; "PDGR coverage" ]
  in
  let rows = ref [] in
  List.iter
    (fun lambda ->
      (* Structural observables on PDG (no regeneration). *)
      let pdg = Poisson_model.create ~rng:(Prng.split rng) ~lambda ~n ~d:2 ~regenerate:false () in
      Poisson_model.warm_up pdg;
      let snap = Poisson_model.snapshot pdg in
      let iso =
        float_of_int (List.length (Snapshot.isolated snap)) /. float_of_int (Snapshot.n snap)
      in
      (* Expansion on PDGR. *)
      let pdgr = Poisson_model.create ~rng:(Prng.split rng) ~lambda ~n ~d ~regenerate:true () in
      Poisson_model.warm_up pdgr;
      let probe = Probe.probe ~rng:(Prng.split rng) (Poisson_model.snapshot pdgr) in
      let pop = Poisson_model.population pdgr in
      (* Flooding: rounds in message-delay units. *)
      let rounds_acc = Stats.Acc.create () and cov_acc = Stats.Acc.create () in
      for _ = 1 to trials do
        let m = Poisson_model.create ~rng:(Prng.split rng) ~lambda ~n ~d ~regenerate:true () in
        Poisson_model.warm_up m;
        let tr =
          Flood.run_poisson_discretized
            ~max_rounds:(int_of_float (20. *. log (float_of_int n)) + 40) m
        in
        (match tr.completion_round with
        | Some r -> Stats.Acc.add_int rounds_acc r
        | None -> ());
        Stats.Acc.add cov_acc tr.peak_coverage
      done;
      Table.add_row table
        [
          Table.fmt_float ~digits:2 lambda;
          string_of_int pop;
          Table.fmt_pct iso;
          Table.fmt_float ~digits:3 probe.min_expansion;
          Table.fmt_float ~digits:1 (Stats.Acc.mean rounds_acc);
          Table.fmt_pct (Stats.Acc.mean cov_acc);
        ];
      rows := (lambda, (iso, probe.min_expansion, Stats.Acc.mean cov_acc)) :: !rows)
    lambdas;
  let iso_of l = let i, _, _ = List.assoc l !rows in i in
  let exp_of l = let _, e, _ = List.assoc l !rows in e in
  let cov_of l = let _, _, c = List.assoc l !rows in c in
  Report.make ~id:"S1"
    ~title:"The lambda = 1 normalization is harmless (Section 1.1)"
    ~tables:[ table ]
    [
      Report.check
        ~claim:"structural observables are lambda-invariant (pure time rescaling)"
        ~expected:"isolated fraction within a factor 1.6 across lambda in [0.25, 16]"
        ~measured:
          (Printf.sprintf "iso: %.2f%% / %.2f%% / %.2f%%" (100. *. iso_of 0.25)
             (100. *. iso_of 1.0) (100. *. iso_of 16.0))
        ~holds:
          (let lo = Float.min (iso_of 0.25) (Float.min (iso_of 1.0) (iso_of 16.0)) in
           let hi = Float.max (iso_of 0.25) (Float.max (iso_of 1.0) (iso_of 16.0)) in
           lo > 0. && hi /. lo < 1.6);
      Report.check ~claim:"PDGR stays an expander at every lambda"
        ~expected:"min candidate expansion >= 0.1 throughout"
        ~measured:
          (Printf.sprintf "%.3f / %.3f / %.3f / %.3f" (exp_of 0.25) (exp_of 1.0)
             (exp_of 4.0) (exp_of 16.0))
        ~holds:(List.for_all (fun l -> exp_of l >= 0.1) lambdas);
      Report.check
        ~claim:"flooding still covers the network even with 16 churn events per hop"
        ~expected:"coverage > 90% at lambda = 16"
        ~measured:(Table.fmt_pct (cov_of 16.0))
        ~holds:(cov_of 16.0 > 0.9);
    ]
