(** Streaming-predicts-Poisson coupling (F13) and seed-sweep robustness (R1).
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val f13 : seed:int -> scale:Scale.t -> Report.t

val r1 : seed:int -> scale:Scale.t -> Report.t
