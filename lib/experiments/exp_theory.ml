(* T1: numeric verification of the paper's "by standard calculus" steps —
   no simulation, just exact evaluation of the formulas the proofs rely
   on.  Each check fails if the asserted inequality is violated at the
   probed parameter values. *)

open Churnet_core
module Table = Churnet_util.Table

let t1 ~seed:_ ~scale =
  let n = Scale.pick scale ~smoke:1000 ~standard:10000 ~full:100000 in
  (* --- Claim 3.11: infinite product vs 1 - 4 e^{-d/100}. --- *)
  let product_table = Table.create [ "d"; "product c"; "bound 1-4e^{-d/100}"; "holds" ] in
  let product_ok = ref true in
  List.iter
    (fun d ->
      let c = Bounds.claim_3_11_product ~d in
      let bound = Bounds.onion_success_lower ~d in
      let ok = c >= bound in
      if d >= 200 && not ok then product_ok := false;
      Table.add_row product_table
        [ string_of_int d; Table.fmt_float c; Table.fmt_float bound; string_of_bool ok ])
    [ 200; 300; 500; 1000 ];
  (* --- Lemma B.1's union bound vs n^{-(d-2)}. --- *)
  let static_table = Table.create [ "d"; "union bound"; "n^{-(d-2)}"; "holds" ] in
  let static_ok = ref true in
  List.iter
    (fun d ->
      let v = Bounds.union_bound_static ~n ~d in
      let target = float_of_int n ** float_of_int (-(d - 2)) in
      let ok = v <= target in
      if d >= 3 && not ok then static_ok := false;
      Table.add_row static_table
        [ string_of_int d; Table.fmt_sci v; Table.fmt_sci target; string_of_bool ok ])
    [ 3; 4; 6 ];
  let static_d2 = Bounds.union_bound_static ~n ~d:2 in
  (* --- Lemma 6.4 (SDGR small sets) vs 1/n^4. --- *)
  let sdgr_small = Bounds.union_bound_sdgr_small ~n ~d:21 in
  let n4 = float_of_int n ** -4. in
  (* --- Lemma 3.6 (SDG large sets) vs 1/n^4. --- *)
  let sdg_large = Bounds.union_bound_sdg_large ~n ~d:20 in
  (* --- Section 4.3.1: q_m total mass <= 1 at the worst case k = n/14. --- *)
  let qm_table = Table.create [ "k"; "d"; "sum q_m"; "<= 1" ] in
  let qm_ok = ref true in
  List.iter
    (fun (k, d) ->
      let mass = Bounds.qm_total_mass ~n ~k ~d in
      let ok = mass <= 1. in
      if d >= 30 && not ok then qm_ok := false;
      Table.add_row qm_table
        [ string_of_int k; string_of_int d; Table.fmt_float mass; string_of_bool ok ])
    [ (n / 14, 30); (n / 14, 35); (n / 20, 30); (max 2 (n / 100), 30) ];
  Report.make ~id:"T1"
    ~title:"Numeric verification of the paper's calculus claims"
    ~tables:[ product_table; static_table; qm_table ]
    [
      Report.check
        ~claim:"Claim 3.11: prod (1 - e^{-(d/20)^i d/100}) >= 1 - 4e^{-d/100} for d >= 200"
        ~expected:"the product dominates the closed-form bound"
        ~measured:
          (Printf.sprintf "d=200: product %.4f vs bound %.4f"
             (Bounds.claim_3_11_product ~d:200)
             (Bounds.onion_success_lower ~d:200))
        ~holds:!product_ok;
      Report.check
        ~claim:"Lemma B.1: the static union bound is <= n^{-(d-2)} for d >= 3 (and diverges at d = 2)"
        ~expected:"tiny for d >= 3, huge for d = 2"
        ~measured:
          (Printf.sprintf "d=3: %.2e, d=2: %.2e" (Bounds.union_bound_static ~n ~d:3)
             static_d2)
        ~holds:(!static_ok && static_d2 > 1.);
      Report.check_values
        ~claim:"Lemma 6.4: the SDGR small-set union bound is <= 1/n^4 at d = 21"
        ~expected:(Printf.sprintf "<= %.2e" n4)
        ~measured:(Printf.sprintf "%.2e" sdgr_small)
        ~expected_value:n4 ~measured_value:sdgr_small
        ~holds:(sdgr_small <= n4);
      Report.check_values
        ~claim:"Lemma 3.6: the SDG large-set union bound is <= 1/n^4 at d = 20"
        ~expected:(Printf.sprintf "<= %.2e" n4)
        ~measured:(Printf.sprintf "%.2e" sdg_large)
        ~expected_value:n4 ~measured_value:sdg_large
        ~holds:(sdg_large <= n4);
      Report.check
        ~claim:"Section 4.3.1: the q_m comparison distribution has total mass <= 1 (d >= 30, k <= n/14)"
        ~expected:"sum q_m <= 1 so the KL inequality applies"
        ~measured:
          (Printf.sprintf "worst case k = n/14: %.4f" (Bounds.qm_total_mass ~n ~k:(n / 14) ~d:30))
        ~holds:!qm_ok;
    ]
