type entry = {
  id : string;
  title : string;
  group : string;
  run : seed:int -> scale:Scale.t -> Report.t;
}

let entry id title group run = { id; title; group; run }

let all =
  [
    entry "E1" "Isolated nodes in SDG (Lemma 3.5)" "table1" (fun ~seed ~scale ->
        Exp_isolated.e1 ~seed ~scale);
    entry "E2" "Isolated nodes in PDG (Lemma 4.10)" "table1" (fun ~seed ~scale ->
        Exp_isolated.e2 ~seed ~scale);
    entry "E3" "Large-set expansion of SDG (Lemma 3.6)" "table1" (fun ~seed ~scale ->
        Exp_expansion.e3 ~seed ~scale);
    entry "E4" "Large-set expansion of PDG (Lemma 4.11)" "table1" (fun ~seed ~scale ->
        Exp_expansion.e4 ~seed ~scale);
    entry "E5" "Vertex expansion of SDGR (Theorem 3.15)" "table1" (fun ~seed ~scale ->
        Exp_expansion.e5 ~seed ~scale);
    entry "E6" "Vertex expansion of PDGR (Theorem 4.16)" "table1" (fun ~seed ~scale ->
        Exp_expansion.e6 ~seed ~scale);
    entry "E7" "SDG flooding failure (Theorem 3.7)" "table1" (fun ~seed ~scale ->
        Exp_flooding.e7 ~seed ~scale);
    entry "E8" "SDG flooding coverage (Theorem 3.8)" "table1" (fun ~seed ~scale ->
        Exp_flooding.e8 ~seed ~scale);
    entry "E9" "PDG flooding (Theorems 4.12/4.13)" "table1" (fun ~seed ~scale ->
        Exp_flooding.e9 ~seed ~scale);
    entry "E10" "SDGR flooding time (Theorem 3.16)" "table1" (fun ~seed ~scale ->
        Exp_flooding.e10 ~seed ~scale);
    entry "E11" "PDGR flooding time (Theorem 4.20)" "table1" (fun ~seed ~scale ->
        Exp_flooding.e11 ~seed ~scale);
    entry "E12" "Poisson churn statistics (Lemmas 4.4/4.7/4.8)" "table1"
      (fun ~seed ~scale -> Exp_churn.e12 ~seed ~scale);
    entry "F1" "Flooding time vs n (all models)" "figures" (fun ~seed ~scale ->
        Exp_flooding.f1 ~seed ~scale);
    entry "F2" "Coverage vs d (SDG/PDG)" "figures" (fun ~seed ~scale ->
        Exp_flooding.f2 ~seed ~scale);
    entry "F3" "Isolated fraction vs d" "figures" (fun ~seed ~scale ->
        Exp_isolated.f3 ~seed ~scale);
    entry "F4" "Degree structure (SDGR/PDGR)" "figures" (fun ~seed ~scale ->
        Exp_degree.f4 ~seed ~scale);
    entry "F5" "Onion-skin layer growth" "figures" (fun ~seed ~scale ->
        Exp_onion.f5 ~seed ~scale);
    entry "F6" "Expansion profile vs set size" "figures" (fun ~seed ~scale ->
        Exp_expansion.f6 ~seed ~scale);
    entry "F7" "Static d-out baseline (Lemma B.1)" "figures" (fun ~seed ~scale ->
        Exp_expansion.f7 ~seed ~scale);
    entry "F8" "Edge-destination probabilities" "figures" (fun ~seed ~scale ->
        Exp_edgeprob.f8 ~seed ~scale);
    entry "F9" "Age demographics / KL divergence" "figures" (fun ~seed ~scale ->
        Exp_churn.f9 ~seed ~scale);
    entry "F10" "PDGR vs P2P protocol baselines" "figures" (fun ~seed ~scale ->
        Exp_p2p.f10 ~seed ~scale);
    entry "F11" "Async vs discretized flooding" "figures" (fun ~seed ~scale ->
        Exp_flooding.f11 ~seed ~scale);
    entry "F12" "Topology fingerprints (models vs P2P protocols)" "figures"
      (fun ~seed ~scale -> Exp_fingerprint.f12 ~seed ~scale);
    entry "F13" "Streaming predicts Poisson (Section 1.1)" "figures"
      (fun ~seed ~scale -> Exp_coupling.f13 ~seed ~scale);
    entry "F14" "In-degree law (Poisson(d a / n))" "figures" (fun ~seed ~scale ->
        Exp_degree_law.f14 ~seed ~scale);
    entry "E13" "XL tier: million-node PDG under live churn" "extensions"
      (fun ~seed ~scale -> Exp_xl.e13 ~seed ~scale);
    entry "X1" "Bounded-degree dynamics (Section 5 open question)" "extensions"
      (fun ~seed ~scale -> Exp_extensions.x1 ~seed ~scale);
    entry "X2" "Gossip instead of flooding" "extensions" (fun ~seed ~scale ->
        Exp_extensions.x2 ~seed ~scale);
    entry "X3" "Adversarial burst churn" "extensions" (fun ~seed ~scale ->
        Exp_extensions.x3 ~seed ~scale);
    entry "A1" "Ablation: regeneration latency" "extensions" (fun ~seed ~scale ->
        Exp_extensions.a1 ~seed ~scale);
    entry "T1" "Numeric verification of the paper's calculus claims" "theory"
      (fun ~seed ~scale -> Exp_theory.t1 ~seed ~scale);
    entry "R1" "Seed-sweep robustness of the w.h.p. claims" "theory"
      (fun ~seed ~scale -> Exp_coupling.r1 ~seed ~scale);
    entry "S1" "Lambda-normalization invariance (Section 1.1)" "theory"
      (fun ~seed ~scale -> Exp_lambda.s1 ~seed ~scale);
  ]

let find id =
  let target = String.uppercase_ascii id in
  List.find_opt (fun e -> String.uppercase_ascii e.id = target) all

let table1 = List.filter (fun e -> e.group = "table1") all
let figures = List.filter (fun e -> e.group = "figures") all
let extensions = List.filter (fun e -> e.group = "extensions") all
let theory = List.filter (fun e -> e.group = "theory") all

(* Resolve an id filter, refusing to silently drop anything: a misspelled
   id used to shrink the result list with no error at all. *)
let select ?ids () =
  match ids with
  | None -> all
  | Some wanted ->
      let wanted = List.map String.uppercase_ascii wanted in
      let known id = List.exists (fun e -> String.uppercase_ascii e.id = id) all in
      let unknown = List.filter (fun id -> not (known id)) wanted in
      if unknown <> [] then
        invalid_arg
          (Printf.sprintf
             "Registry.run_all: unknown experiment id(s): %s (valid ids: %s)"
             (String.concat ", " unknown)
             (String.concat ", " (List.map (fun e -> e.id) all)));
      List.filter (fun e -> List.mem (String.uppercase_ascii e.id) wanted) all

(* One cell by id, with the run parameters supplied by the caller (the
   sweep planner hands every cell its own seed and scale from the grid
   config) instead of the CLI's single baked-in --seed/--scale pair. *)
let run_cell ~id ~seed ~scale =
  match find id with
  | Some e -> e.run ~seed ~scale
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.run_cell: unknown experiment id %S (valid ids: %s)"
           id
           (String.concat ", " (List.map (fun e -> e.id) all)))

let run_all ?ids ~seed ~scale () =
  List.map (fun e -> e.run ~seed ~scale) (select ?ids ())

let run_timed ?ids ~seed ~scale () =
  List.map
    (fun e -> Telemetry.measure ~seed ~scale (fun () -> e.run ~seed ~scale))
    (select ?ids ())

let summary reports =
  let table = Churnet_util.Table.create [ "id"; "experiment"; "result" ] in
  List.iter (fun r -> Churnet_util.Table.add_row table (Report.summary_row r)) reports;
  table

let reports_to_json ~seed ~scale ~domains timed =
  let module Json = Churnet_util.Json in
  Json.Obj
    [
      ("schema", Json.String "churnet-report/1");
      ("seed", Json.Int seed);
      ("scale", Json.String (Scale.to_string scale));
      ("domains", Json.Int domains);
      ( "reports",
        Json.Arr (List.map (fun (r, tm) -> Report.to_json ~telemetry:tm r) timed) );
    ]
