(** Topology fingerprints: models vs P2P protocols (F12).
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val f12 : seed:int -> scale:Scale.t -> Report.t
