(* F13 — "the streaming model has some predictive power on the behavior of
   more realistic models" (Section 1.1): quantify the agreement between
   the streaming and Poisson variants on the paper's own observables.

   R1 — the theorems are w.h.p. statements; estimate the empirical
   "with high probability" by sweeping seeds on the two headline positive
   results (expansion of SDGR, completion of SDGR/PDGR flooding). *)

open Churnet_core
module Prng = Churnet_util.Prng
module Table = Churnet_util.Table
module Stats = Churnet_util.Stats
module Probe = Churnet_expansion.Probe

let f13 ~seed ~scale =
  let n = Scale.pick scale ~smoke:500 ~standard:2500 ~full:8000 in
  let trials = Scale.pick scale ~smoke:2 ~standard:4 ~full:10 in
  let rng = Prng.create seed in
  let rel_diff a b =
    if Float.is_nan a || Float.is_nan b then nan
    else if Float.max (Float.abs a) (Float.abs b) = 0. then 0.
    else Float.abs (a -. b) /. Float.max (Float.abs a) (Float.abs b)
  in
  (* Observable 1: isolated fraction without regeneration, per d. *)
  let iso kind d =
    let acc = Stats.Acc.create () in
    for _ = 1 to trials do
      let m = Models.create ~rng:(Prng.split rng) kind ~n ~d in
      Models.warm_up_batch m;
      let snap = Models.snapshot m in
      let isolated = List.length (Churnet_graph.Snapshot.isolated snap) in
      Stats.Acc.add acc
        (float_of_int isolated /. float_of_int (Churnet_graph.Snapshot.n snap))
    done;
    Stats.Acc.mean acc
  in
  (* Observable 2: flooding peak coverage without regeneration. *)
  let cov kind d =
    let acc = Stats.Acc.create () in
    for _ = 1 to trials do
      let m = Models.create ~rng:(Prng.split rng) kind ~n ~d in
      Models.warm_up_batch m;
      let tr =
        Models.flood ~max_rounds:(int_of_float (6. *. log (float_of_int n)) + 20) m
      in
      Stats.Acc.add acc tr.Flood.peak_coverage
    done;
    Stats.Acc.mean acc
  in
  (* Observable 3: completion rounds with regeneration. *)
  let rounds kind d =
    let acc = Stats.Acc.create () in
    for _ = 1 to trials do
      let m = Models.create ~rng:(Prng.split rng) kind ~n ~d in
      Models.warm_up_batch m;
      let tr =
        Models.flood ~max_rounds:(int_of_float (20. *. log (float_of_int n)) + 40) m
      in
      match tr.Flood.completion_round with
      | Some r -> Stats.Acc.add_int acc r
      | None -> ()
    done;
    Stats.Acc.mean acc
  in
  let table =
    Table.create [ "observable"; "streaming"; "Poisson"; "relative difference" ]
  in
  let diffs = ref [] in
  let row name a b =
    let d = rel_diff a b in
    diffs := (name, d) :: !diffs;
    Table.add_row table
      [ name; Table.fmt_float ~digits:4 a; Table.fmt_float ~digits:4 b; Table.fmt_pct d ]
  in
  row "isolated fraction, d=2" (iso Models.SDG 2) (iso Models.PDG 2);
  row "isolated fraction, d=3" (iso Models.SDG 3) (iso Models.PDG 3);
  row "flood peak coverage, d=4" (cov Models.SDG 4) (cov Models.PDG 4);
  row "flood peak coverage, d=8" (cov Models.SDG 8) (cov Models.PDG 8);
  row "completion rounds (regen), d=8" (rounds Models.SDGR 8) (rounds Models.PDGR 8);
  row "completion rounds (regen), d=4" (rounds Models.SDGR 4) (rounds Models.PDGR 4);
  let worst =
    List.fold_left
      (fun acc (_, d) -> if Float.is_nan d then acc else Float.max acc d)
      0. !diffs
  in
  Report.make ~id:"F13"
    ~title:"The streaming model predicts the Poisson model (Section 1.1's claim)"
    ~tables:[ table ]
    [
      Report.check
        ~claim:"streaming and Poisson variants agree on the paper's observables"
        ~expected:"every observable within ~35% relative difference"
        ~measured:(Printf.sprintf "worst relative difference %.1f%%" (100. *. worst))
        ~holds:(worst < 0.35);
    ]

let r1 ~seed ~scale =
  let n = Scale.pick scale ~smoke:300 ~standard:1200 ~full:4000 in
  let seeds = Scale.pick scale ~smoke:8 ~standard:25 ~full:80 in
  let rng = Prng.create seed in
  (* Headline positive claims, one cheap pass per seed.  Trials are
     independent (seeds pre-split deterministically), so run them across
     domains. *)
  let trial_rngs = Array.init seeds (fun _ -> Prng.split rng) in
  let outcomes =
    Churnet_util.Parallel.map
      (fun trial_rng ->
        let m = Models.create ~rng:(Prng.split trial_rng) Models.SDGR ~n ~d:14 in
        Models.warm_up_batch m;
        let probe =
          Probe.probe ~rng:(Prng.split trial_rng) ~samples_per_size:4
            (Models.snapshot m)
        in
        let exp_ok = probe.min_expansion >= 0.1 in
        let budget = int_of_float (10. *. log (float_of_int n)) + 30 in
        let m2 = Models.create ~rng:(Prng.split trial_rng) Models.SDGR ~n ~d:21 in
        Models.warm_up_batch m2;
        let sdgr_done = (Models.flood ~max_rounds:budget m2).Flood.completed in
        let m3 = Models.create ~rng:(Prng.split trial_rng) Models.PDGR ~n ~d:35 in
        Models.warm_up_batch m3;
        let pdgr_done = (Models.flood ~max_rounds:budget m3).Flood.completed in
        (exp_ok, sdgr_done, pdgr_done))
      trial_rngs
  in
  let expansion_ok = ref 0 and sdgr_ok = ref 0 and pdgr_ok = ref 0 in
  Array.iter
    (fun (e, s2, p) ->
      if e then incr expansion_ok;
      if s2 then incr sdgr_ok;
      if p then incr pdgr_ok)
    outcomes;
  let table = Table.create [ "claim"; "seeds passing"; "empirical probability" ] in
  let frac x = float_of_int x /. float_of_int seeds in
  Table.add_row table
    [ "SDGR snapshot is a 0.1-expander (Thm 3.15)";
      Printf.sprintf "%d/%d" !expansion_ok seeds; Table.fmt_pct (frac !expansion_ok) ];
  Table.add_row table
    [ "SDGR flooding completes in O(log n) (Thm 3.16)";
      Printf.sprintf "%d/%d" !sdgr_ok seeds; Table.fmt_pct (frac !sdgr_ok) ];
  Table.add_row table
    [ "PDGR flooding completes in O(log n) (Thm 4.20)";
      Printf.sprintf "%d/%d" !pdgr_ok seeds; Table.fmt_pct (frac !pdgr_ok) ];
  Report.make ~id:"R1" ~title:"Seed-sweep robustness: how high is `with high probability'?"
    ~tables:[ table ]
    [
      Report.check ~claim:"the positive w.h.p. results hold for every sampled seed"
        ~expected:"100% of seeds"
        ~measured:
          (Printf.sprintf "expansion %d/%d, SDGR %d/%d, PDGR %d/%d" !expansion_ok seeds
             !sdgr_ok seeds !pdgr_ok seeds)
        ~holds:(!expansion_ok = seeds && !sdgr_ok = seeds && !pdgr_ok = seeds);
    ]
