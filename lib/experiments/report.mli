(** Uniform experiment output: a set of paper-vs-measured checks plus the
    tables and rendered ASCII figures that regenerate the corresponding
    cell of Table 1 (or a derived figure). *)

type check = {
  claim : string;  (** what the paper asserts, in one line *)
  expected : string;  (** the paper's quantitative prediction, rendered *)
  measured : string;  (** what the simulation produced, rendered *)
  expected_value : float option;
      (** the paper-side number behind [expected], when the check is a
          single scalar comparison (threshold, bound, target) *)
  measured_value : float option;
      (** the measured number behind [measured], when scalar *)
  holds : bool;  (** whether the measured value is on the paper's side *)
}

type t = {
  id : string;
  title : string;
  checks : check list;
  tables : Churnet_util.Table.t list;
  figures : string list;  (** pre-rendered ASCII charts *)
}

val check :
  claim:string -> expected:string -> measured:string -> holds:bool -> check
(** Display-string-only check ([expected_value]/[measured_value] stay
    [None]): for checks over whole distributions or multi-column tables
    where no single scalar pair exists. *)

val check_values :
  claim:string ->
  expected:string ->
  measured:string ->
  expected_value:float ->
  measured_value:float ->
  holds:bool ->
  check
(** Like {!check} but additionally carries the machine-readable scalar
    pair behind the display strings, so JSON consumers can diff the
    numbers across commits instead of parsing formatted text. *)

val make : id:string -> title:string -> ?tables:Churnet_util.Table.t list ->
  ?figures:string list -> check list -> t

val all_hold : t -> bool
val render : t -> string
(** Human-readable block: header, checks with PASS/FAIL markers, tables,
    figures.  Byte-identical to the rendering before the JSON layer
    existed — serialization never changes the text output. *)

val summary_row : t -> string list
(** [id; title; "k/m checks hold"] for the final summary table. *)

val check_to_json : check -> Churnet_util.Json.t

val to_json : ?telemetry:Telemetry.t -> t -> Churnet_util.Json.t
(** Object with id, title, all_hold, checks (each with claim / expected /
    measured display strings, nullable expected_value / measured_value
    floats and holds), tables (via {!Churnet_util.Table.to_json}),
    figures, and — when provided — the run's telemetry. *)
