(** Uniform experiment output: a set of paper-vs-measured checks plus the
    tables and rendered ASCII figures that regenerate the corresponding
    cell of Table 1 (or a derived figure). *)

type check = {
  claim : string;  (** what the paper asserts, in one line *)
  expected : string;  (** the paper's quantitative prediction *)
  measured : string;  (** what the simulation produced *)
  holds : bool;  (** whether the measured value is on the paper's side *)
}

type t = {
  id : string;
  title : string;
  checks : check list;
  tables : Churnet_util.Table.t list;
  figures : string list;  (** pre-rendered ASCII charts *)
}

val check : claim:string -> expected:string -> measured:string -> holds:bool -> check
val make : id:string -> title:string -> ?tables:Churnet_util.Table.t list ->
  ?figures:string list -> check list -> t

val all_hold : t -> bool
val render : t -> string
(** Human-readable block: header, checks with PASS/FAIL markers, tables,
    figures. *)

val summary_row : t -> string list
(** [id; title; "k/m checks hold"] for the final summary table. *)
