(** Flooding experiments (Theorems 3.7/3.8, 4.12/4.13, 3.16, 4.20; F1/F2/F11).
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val e7 : seed:int -> scale:Scale.t -> Report.t

val e8 : seed:int -> scale:Scale.t -> Report.t

val e9 : seed:int -> scale:Scale.t -> Report.t

val e10 : seed:int -> scale:Scale.t -> Report.t

val e11 : seed:int -> scale:Scale.t -> Report.t

val f1 : seed:int -> scale:Scale.t -> Report.t

val f2 : seed:int -> scale:Scale.t -> Report.t

val f11 : seed:int -> scale:Scale.t -> Report.t
