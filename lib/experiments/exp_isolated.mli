(** Isolated-node experiments (Lemmas 3.5/4.10; F3 sweep).
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val e1 : seed:int -> scale:Scale.t -> Report.t

val e2 : seed:int -> scale:Scale.t -> Report.t

val f3 : seed:int -> scale:Scale.t -> Report.t
