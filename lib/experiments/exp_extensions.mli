(** Extensions: bounded degree, gossip, burst churn, regeneration-latency ablation.
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val x1 : seed:int -> scale:Scale.t -> Report.t

val x2 : seed:int -> scale:Scale.t -> Report.t

val x3 : seed:int -> scale:Scale.t -> Report.t

val a1 : seed:int -> scale:Scale.t -> Report.t
