(* F12: topology fingerprints — do the paper's algorithm-free random
   models actually look like protocol-built P2P topologies?  Clustering,
   assortativity, degree skew, distances: the quantities the paper's
   "bears a certain resemblance to Bitcoin" remark implicitly claims. *)

open Churnet_core
module Prng = Churnet_util.Prng
module Table = Churnet_util.Table
module Metrics = Churnet_graph.Metrics

let f12 ~seed ~scale =
  let n = Scale.pick scale ~smoke:400 ~standard:2000 ~full:6000 in
  let d = 8 in
  let rng = Prng.create seed in
  let snapshots =
    [
      ("SDG", lazy (let m = Models.create ~rng:(Prng.split rng) Models.SDG ~n ~d in
                    Models.warm_up_batch m; Models.snapshot m));
      ("SDGR", lazy (let m = Models.create ~rng:(Prng.split rng) Models.SDGR ~n ~d in
                     Models.warm_up_batch m; Models.snapshot m));
      ("PDG", lazy (let m = Models.create ~rng:(Prng.split rng) Models.PDG ~n ~d in
                    Models.warm_up_batch m; Models.snapshot m));
      ("PDGR", lazy (let m = Models.create ~rng:(Prng.split rng) Models.PDGR ~n ~d in
                     Models.warm_up_batch m; Models.snapshot m));
      ("static d-out", lazy (Static_dout.generate ~rng:(Prng.split rng) ~n ~d ()));
      ("Bitcoin-like", lazy (let m = Churnet_p2p.Bitcoin_like.create ~rng:(Prng.split rng) ~n () in
                             Churnet_p2p.Bitcoin_like.warm_up m;
                             Churnet_p2p.Bitcoin_like.snapshot m));
      ("rw tokens", lazy (let m = Churnet_p2p.Rw_streaming.create ~rng:(Prng.split rng) ~n ~d () in
                          Churnet_p2p.Rw_streaming.warm_up m;
                          Churnet_p2p.Rw_streaming.snapshot m));
      ("central cache", lazy (let m = Churnet_p2p.Cache_protocol.create ~rng:(Prng.split rng) ~n ~d () in
                              Churnet_p2p.Cache_protocol.warm_up m;
                              Churnet_p2p.Cache_protocol.snapshot m));
      ("local update", lazy (let m = Churnet_p2p.Local_update.create ~rng:(Prng.split rng) ~n ~d () in
                             Churnet_p2p.Local_update.warm_up m;
                             Churnet_p2p.Local_update.snapshot m));
    ]
  in
  let table =
    Table.create
      [ "network"; "mean deg"; "max deg"; "gini"; "clustering"; "assortativity";
        "mean dist"; "diam >="; "giant" ]
  in
  let prints = ref [] in
  List.iter
    (fun (name, snap) ->
      let fp = Metrics.fingerprint ~rng:(Prng.split rng) (Lazy.force snap) in
      prints := (name, fp) :: !prints;
      Table.add_row table
        [
          name;
          Table.fmt_float ~digits:2 fp.mean_degree;
          string_of_int fp.max_degree;
          Table.fmt_float ~digits:3 fp.degree_gini;
          Table.fmt_float ~digits:4 fp.global_clustering;
          Table.fmt_float ~digits:3 fp.assortativity;
          Table.fmt_float ~digits:2 fp.mean_distance;
          string_of_int fp.diameter_lb;
          Table.fmt_pct fp.giant_fraction;
        ])
    snapshots;
  let fp name = List.assoc name !prints in
  let pdgr = fp "PDGR" and btc = fp "Bitcoin-like" in
  Report.make ~id:"F12" ~title:"Topology fingerprints: random models vs P2P protocols"
    ~tables:[ table ]
    [
      Report.check
        ~claim:"all sparse models are locally tree-like (vanishing clustering, like real P2P overlays)"
        ~expected:"global clustering << 0.1 everywhere"
        ~measured:
          (String.concat ", "
             (List.rev_map
                (fun (name, f) ->
                  Printf.sprintf "%s %.4f" name f.Metrics.global_clustering)
                !prints))
        ~holds:
          (List.for_all
             (fun (_, f) ->
               Float.is_nan f.Metrics.global_clustering || f.Metrics.global_clustering < 0.1)
             !prints);
      Report.check
        ~claim:"PDGR and the Bitcoin-like overlay have close fingerprints (the paper's analogy)"
        ~expected:"mean distance within 1 hop; degree gini within 0.15"
        ~measured:
          (Printf.sprintf "dist %.2f vs %.2f; gini %.3f vs %.3f" pdgr.mean_distance
             btc.mean_distance pdgr.degree_gini btc.degree_gini)
        ~holds:
          (Float.abs (pdgr.mean_distance -. btc.mean_distance) < 1.
          && Float.abs (pdgr.degree_gini -. btc.degree_gini) < 0.15);
      Report.check ~claim:"small worlds: mean distance ~ log n / log d"
        ~expected:
          (Printf.sprintf "PDGR mean distance within [%.1f, %.1f]"
             (0.5 *. log (float_of_int n) /. log (float_of_int (2 * d)))
             ((2.5 *. log (float_of_int n) /. log (float_of_int d)) +. 1.))
        ~measured:(Printf.sprintf "%.2f" pdgr.mean_distance)
        ~holds:
          (pdgr.mean_distance
           > 0.5 *. log (float_of_int n) /. log (float_of_int (2 * d))
          && pdgr.mean_distance
             < (2.5 *. log (float_of_int n) /. log (float_of_int d)) +. 1.);
    ]
