(** In-degree law Poisson(d a / n) (F14).
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val f14 : seed:int -> scale:Scale.t -> Report.t
