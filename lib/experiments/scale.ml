type t = Smoke | Standard | Full

let of_string s =
  match String.lowercase_ascii s with
  | "smoke" -> Some Smoke
  | "standard" -> Some Standard
  | "full" -> Some Full
  | _ -> None

let to_string = function Smoke -> "smoke" | Standard -> "standard" | Full -> "full"

let pick t ~smoke ~standard ~full =
  match t with Smoke -> smoke | Standard -> standard | Full -> full
