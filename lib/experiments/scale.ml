type t = Smoke | Standard | Full | XL

let of_string s =
  match String.lowercase_ascii s with
  | "smoke" -> Some Smoke
  | "standard" -> Some Standard
  | "full" -> Some Full
  | "xl" -> Some XL
  | _ -> None

let to_string = function
  | Smoke -> "smoke"
  | Standard -> "standard"
  | Full -> "full"
  | XL -> "xl"

let all = [ Smoke; Standard; Full; XL ]
let names = List.map to_string all

let pick ?xl t ~smoke ~standard ~full =
  match t with
  | Smoke -> smoke
  | Standard -> standard
  | Full -> full
  | XL -> ( match xl with Some v -> v | None -> full)
