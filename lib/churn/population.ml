module Prng = Churnet_util.Prng

type stats = {
  n : int;
  rounds : int;
  pop_mean : float;
  pop_min : int;
  pop_max : int;
  frac_in_09_11 : float;
  death_frac : float;
  max_age_rounds : int;
  lifetime_mean : float;
}

(* Dense alive-set of (id, birth_round, birth_time) triples with
   swap-remove, mirroring Dyngraph's sampler but without edges. *)
type cohort = {
  mutable ids : int array;
  mutable birth_round : int array;
  mutable birth_time : float array;
  mutable len : int;
}

let cohort_create () =
  { ids = Array.make 1024 0; birth_round = Array.make 1024 0;
    birth_time = Array.make 1024 0.; len = 0 }

let cohort_push c id round time =
  if c.len = Array.length c.ids then begin
    let grow a fill =
      let b = Array.make (2 * c.len) fill in
      Array.blit a 0 b 0 c.len;
      b
    in
    c.ids <- grow c.ids 0;
    c.birth_round <- grow c.birth_round 0;
    c.birth_time <- grow c.birth_time 0.
  end;
  c.ids.(c.len) <- id;
  c.birth_round.(c.len) <- round;
  c.birth_time.(c.len) <- time;
  c.len <- c.len + 1

let cohort_remove c i =
  let last = c.len - 1 in
  c.ids.(i) <- c.ids.(last);
  c.birth_round.(i) <- c.birth_round.(last);
  c.birth_time.(i) <- c.birth_time.(last);
  c.len <- last

let simulate ~rng ~n ~rounds () =
  if n <= 0 || rounds <= 0 then invalid_arg "Population.simulate";
  let churn = Poisson_churn.create ~rng ~n () in
  let cohort = cohort_create () in
  let next_id = ref 0 in
  let step round =
    match Poisson_churn.decide churn ~alive:cohort.len with
    | Poisson_churn.Birth, _dt ->
        cohort_push cohort !next_id round (Poisson_churn.time churn);
        incr next_id;
        `Birth
    | Poisson_churn.Death, _dt ->
        let i = Prng.int rng cohort.len in
        let lifetime = Poisson_churn.time churn -. cohort.birth_time.(i) in
        cohort_remove cohort i;
        `Death lifetime
  in
  (* Warm-up until the continuous clock passes 4n, so Lemma 4.4's
     precondition t >= 3n holds with margin.  (Jumps arrive at rate about
     2 per time unit at stationarity, so this is roughly 8n jumps.) *)
  let warmup = ref 0 in
  while Poisson_churn.time churn < 4. *. float_of_int n do
    incr warmup;
    ignore (step !warmup)
  done;
  let warmup = !warmup in
  let pop_acc = Churnet_util.Stats.Acc.create () in
  let life_acc = Churnet_util.Stats.Acc.create () in
  let pop_min = ref max_int and pop_max = ref 0 in
  let in_band = ref 0 and deaths = ref 0 in
  let max_age = ref 0 in
  let sample_every = max 1 (n / 4) in
  for r = warmup + 1 to warmup + rounds do
    (match step r with
    | `Birth -> ()
    | `Death lifetime ->
        incr deaths;
        Churnet_util.Stats.Acc.add life_acc lifetime);
    let pop = cohort.len in
    Churnet_util.Stats.Acc.add_int pop_acc pop;
    if pop < !pop_min then pop_min := pop;
    if pop > !pop_max then pop_max := pop;
    let fpop = float_of_int pop and fn = float_of_int n in
    if fpop >= 0.9 *. fn && fpop <= 1.1 *. fn then incr in_band;
    if r mod sample_every = 0 then
      for i = 0 to cohort.len - 1 do
        let age = r - cohort.birth_round.(i) in
        if age > !max_age then max_age := age
      done
  done;
  {
    n;
    rounds;
    pop_mean = Churnet_util.Stats.Acc.mean pop_acc;
    pop_min = !pop_min;
    pop_max = !pop_max;
    frac_in_09_11 = float_of_int !in_band /. float_of_int rounds;
    death_frac = float_of_int !deaths /. float_of_int rounds;
    max_age_rounds = !max_age;
    lifetime_mean = Churnet_util.Stats.Acc.mean life_acc;
  }
