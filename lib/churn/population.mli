(** Graph-free simulation of the Poisson churn population, used to validate
    the paper's churn lemmas cheaply (experiment E12):

    - Lemma 4.4: |N_t| in [0.9 n, 1.1 n] w.h.p. for t >= 3n;
    - Lemma 4.7: the next jump is a death (resp. birth) with probability in
      [0.47, 0.53] once r >= n log n;
    - Lemma 4.8: after r >= 7 n log n jumps, every alive node was born
      within the last 7 n log n jumps, w.h.p. *)

type stats = {
  n : int;  (** target population (1/mu) *)
  rounds : int;  (** jumps simulated after warm-up *)
  pop_mean : float;
  pop_min : int;
  pop_max : int;
  frac_in_09_11 : float;  (** fraction of observed jumps with |N| in [0.9n, 1.1n] *)
  death_frac : float;  (** fraction of post-warm-up jumps that were deaths *)
  max_age_rounds : int;  (** max node age (in jumps) seen at sampled instants *)
  lifetime_mean : float;  (** mean observed lifetime in continuous time *)
}

val simulate : rng:Churnet_util.Prng.t -> n:int -> rounds:int -> unit -> stats
(** Warm up until continuous time [4 n] (Lemma 4.4 needs t >= 3n), then
    run [rounds] further jumps collecting the statistics above.  Ages are
    sampled every [n/4] jumps. *)
