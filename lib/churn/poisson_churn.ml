module Prng = Churnet_util.Prng
module Dist = Churnet_util.Dist

type t = {
  lambda : float;
  mu : float;
  rng : Prng.t;
  mutable time : float;
  mutable round : int;
  mutable births : int;
  mutable deaths : int;
}

type decision = Birth | Death

let create ~rng ?(lambda = 1.) ~n () =
  if n <= 0 then invalid_arg "Poisson_churn.create: n must be positive";
  if lambda <= 0. then invalid_arg "Poisson_churn.create: lambda must be positive";
  { lambda; mu = lambda /. float_of_int n; rng; time = 0.; round = 0; births = 0; deaths = 0 }

let lambda t = t.lambda
let mu t = t.mu

let decide t ~alive =
  if alive < 0 then invalid_arg "Poisson_churn.decide: negative population";
  let total_rate = (float_of_int alive *. t.mu) +. t.lambda in
  let dt = Dist.exponential t.rng total_rate in
  t.time <- t.time +. dt;
  t.round <- t.round + 1;
  let p_birth = t.lambda /. total_rate in
  if alive = 0 || Prng.bernoulli t.rng p_birth then begin
    t.births <- t.births + 1;
    (Birth, dt)
  end
  else begin
    t.deaths <- t.deaths + 1;
    (Death, dt)
  end

(* Bulk version of [decide].  The churn PRNG is independent of the graph
   PRNG (the model splits them at creation), so a whole run of jumps can
   be drawn here before any of them touches the graph: the draw sequence
   on [t.rng] is exactly the one the equivalent [decide] loop would
   produce, with the population tracked incrementally (+1 per birth, -1
   per death — a death is impossible at population 0 because the birth
   branch short-circuits without consuming a Bernoulli draw, just as in
   [decide]). *)
let decide_batch t ~alive ~deadline ~limit ~decisions ~dts =
  if alive < 0 then invalid_arg "Poisson_churn.decide_batch: negative population";
  let cap = min limit (min (Bytes.length decisions) (Array.length dts)) in
  let alive = ref alive in
  let count = ref 0 in
  let pending = ref None in
  let continue = ref (cap > 0) in
  while !continue do
    let total_rate = (float_of_int !alive *. t.mu) +. t.lambda in
    let dt = Dist.exponential t.rng total_rate in
    t.time <- t.time +. dt;
    t.round <- t.round + 1;
    let p_birth = t.lambda /. total_rate in
    let birth = !alive = 0 || Prng.bernoulli t.rng p_birth in
    if birth then t.births <- t.births + 1 else t.deaths <- t.deaths + 1;
    (* [t.time] here equals the caller's clock plus this jump's [dt] (both
       accumulate the same dts by the same additions in the same order),
       so this comparison is bitwise the one [Poisson_model.run_until_time]
       makes before executing a pre-drawn jump. *)
    if t.time > deadline then begin
      pending := Some ((if birth then Birth else Death), dt);
      continue := false
    end
    else begin
      Bytes.set decisions !count (if birth then '\000' else '\001');
      dts.(!count) <- dt;
      alive := if birth then !alive + 1 else !alive - 1;
      incr count;
      if !count >= cap then continue := false
    end
  done;
  (!count, !pending)

let time t = t.time
let round t = t.round
let births t = t.births
let deaths t = t.deaths

module Codec = Churnet_util.Codec

let encode w t =
  Codec.f64 w t.lambda;
  Codec.f64 w t.mu;
  Prng.encode w t.rng;
  Codec.f64 w t.time;
  Codec.varint w t.round;
  Codec.varint w t.births;
  Codec.varint w t.deaths

let decode r =
  let lambda = Codec.read_f64 r in
  let mu = Codec.read_f64 r in
  let rng = Prng.decode r in
  let time = Codec.read_f64 r in
  let round = Codec.read_varint r in
  let births = Codec.read_varint r in
  let deaths = Codec.read_varint r in
  if lambda <= 0. || mu <= 0. || round < 0 || births < 0 || deaths < 0 then
    raise (Codec.Error "Poisson_churn.decode: inconsistent fields");
  { lambda; mu; rng; time; round; births; deaths }
