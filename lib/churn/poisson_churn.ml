module Prng = Churnet_util.Prng
module Dist = Churnet_util.Dist

type t = {
  lambda : float;
  mu : float;
  rng : Prng.t;
  mutable time : float;
  mutable round : int;
  mutable births : int;
  mutable deaths : int;
}

type decision = Birth | Death

let create ~rng ?(lambda = 1.) ~n () =
  if n <= 0 then invalid_arg "Poisson_churn.create: n must be positive";
  if lambda <= 0. then invalid_arg "Poisson_churn.create: lambda must be positive";
  { lambda; mu = lambda /. float_of_int n; rng; time = 0.; round = 0; births = 0; deaths = 0 }

let lambda t = t.lambda
let mu t = t.mu

let decide t ~alive =
  if alive < 0 then invalid_arg "Poisson_churn.decide: negative population";
  let total_rate = (float_of_int alive *. t.mu) +. t.lambda in
  let dt = Dist.exponential t.rng total_rate in
  t.time <- t.time +. dt;
  t.round <- t.round + 1;
  let p_birth = t.lambda /. total_rate in
  if alive = 0 || Prng.bernoulli t.rng p_birth then begin
    t.births <- t.births + 1;
    (Birth, dt)
  end
  else begin
    t.deaths <- t.deaths + 1;
    (Death, dt)
  end

let time t = t.time
let round t = t.round
let births t = t.births
let deaths t = t.deaths

module Codec = Churnet_util.Codec

let encode w t =
  Codec.f64 w t.lambda;
  Codec.f64 w t.mu;
  Prng.encode w t.rng;
  Codec.f64 w t.time;
  Codec.varint w t.round;
  Codec.varint w t.births;
  Codec.varint w t.deaths

let decode r =
  let lambda = Codec.read_f64 r in
  let mu = Codec.read_f64 r in
  let rng = Prng.decode r in
  let time = Codec.read_f64 r in
  let round = Codec.read_varint r in
  let births = Codec.read_varint r in
  let deaths = Codec.read_varint r in
  if lambda <= 0. || mu <= 0. || round < 0 || births < 0 || deaths < 0 then
    raise (Codec.Error "Poisson_churn.decode: inconsistent fields");
  { lambda; mu; rng; time; round; births; deaths }
