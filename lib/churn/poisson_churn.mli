(** The Poisson node-churn process (Definition 4.1) observed through its
    jump chain (Definition 4.5 / Lemma 4.6).

    With [N] nodes alive, the time to the next event is
    Exp(N*mu + lambda); the event is a birth with probability
    lambda / (N*mu + lambda) and otherwise the death of a uniformly random
    alive node.  Throughout the paper (and here) lambda = 1 and mu = 1/n,
    so the stationary population is n. *)

type t

type decision =
  | Birth
  | Death  (** The victim is a uniformly random alive node, chosen by the caller. *)

val create : rng:Churnet_util.Prng.t -> ?lambda:float -> n:int -> unit -> t
(** [create ~n ()] = churn with arrival rate [lambda] (default 1) and
    death rate mu = lambda/n, so the stationary population is [n] for any
    [lambda].  The paper normalizes lambda = 1 "without loss of
    generality"; the S1 experiment uses other values to verify that the
    normalization is indeed harmless. *)

val lambda : t -> float
val mu : t -> float

val decide : t -> alive:int -> decision * float
(** [decide t ~alive] draws the next jump: its type and the elapsed time
    dt ~ Exp(alive * mu + lambda).  When [alive = 0] the only possible
    event is a birth. *)

val decide_batch :
  t ->
  alive:int ->
  deadline:float ->
  limit:int ->
  decisions:Bytes.t ->
  dts:float array ->
  int * (decision * float) option
(** [decide_batch t ~alive ~deadline ~limit ~decisions ~dts] draws up to
    [limit] consecutive jumps in one call, writing jump [i]'s type into
    [Bytes.get decisions i] (['\000'] = birth, ['\001'] = death) and its
    elapsed time into [dts.(i)].  The population starts at [alive] and is
    tracked incrementally across the batch, so the PRNG draw sequence is
    byte-identical to calling [decide] once per jump with the graph
    updated in between.  Returns [(count, pending)]: [count] jumps were
    stored, and if the jump after them would cross [deadline] it is
    returned as [pending] instead of stored — its rates were already
    drawn from the PRNG, so the caller must treat it as state exactly
    like the per-jump pre-drawn jump.  [count] is also bounded by the
    capacity of [decisions] and [dts]. *)

val time : t -> float
(** Total continuous time elapsed over all [decide] / [decide_batch]
    draws (including a returned pending jump). *)

val round : t -> int
(** Number of jumps so far (the index r of T_r). *)

val births : t -> int
val deaths : t -> int

val encode : Churnet_util.Codec.writer -> t -> unit
(** Serialize rates, PRNG state, clock and event counters for
    checkpoints. *)

val decode : Churnet_util.Codec.reader -> t
