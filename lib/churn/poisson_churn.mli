(** The Poisson node-churn process (Definition 4.1) observed through its
    jump chain (Definition 4.5 / Lemma 4.6).

    With [N] nodes alive, the time to the next event is
    Exp(N*mu + lambda); the event is a birth with probability
    lambda / (N*mu + lambda) and otherwise the death of a uniformly random
    alive node.  Throughout the paper (and here) lambda = 1 and mu = 1/n,
    so the stationary population is n. *)

type t

type decision =
  | Birth
  | Death  (** The victim is a uniformly random alive node, chosen by the caller. *)

val create : rng:Churnet_util.Prng.t -> ?lambda:float -> n:int -> unit -> t
(** [create ~n ()] = churn with arrival rate [lambda] (default 1) and
    death rate mu = lambda/n, so the stationary population is [n] for any
    [lambda].  The paper normalizes lambda = 1 "without loss of
    generality"; the S1 experiment uses other values to verify that the
    normalization is indeed harmless. *)

val lambda : t -> float
val mu : t -> float

val decide : t -> alive:int -> decision * float
(** [decide t ~alive] draws the next jump: its type and the elapsed time
    dt ~ Exp(alive * mu + lambda).  When [alive = 0] the only possible
    event is a birth. *)

val time : t -> float
(** Total continuous time elapsed over all [decide] calls. *)

val round : t -> int
(** Number of jumps so far (the index r of T_r). *)

val births : t -> int
val deaths : t -> int

val encode : Churnet_util.Codec.writer -> t -> unit
(** Serialize rates, PRNG state, clock and event counters for
    checkpoints. *)

val decode : Churnet_util.Codec.reader -> t
