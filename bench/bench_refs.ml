(* Reference implementations and shared measurement harness for the
   kernel benchmarks ([kernels.exe]) and the regression gate
   ([compare.exe]).

   The "old" sides of every head-to-head live here, kept verbatim from
   the pre-optimization tree so the speedup ratios mean what they say:

   - [Hashtbl_core]: the hashtable graph core as it was before the slot
     arena rewrite.
   - [old_expand_informed]: the hashtable + list-returning-neighbors
     flooding hop.
   - [Byte_bitset]: the byte-at-a-time bitset with the per-bit [iter]
     that predates the word-level scan.
   - [measure_flood_hop]'s old side: the full-rescan synchronous hop
     ([Flood.expand_informed]) that predates the frontier driver.

   Both executables measure through the same [measure_*] functions so
   the gate compares exactly what the benchmark reports.  Every
   measurement asserts old/new state identity before trusting a timing:
   a speedup over a diverged baseline is meaningless. *)

module Dyngraph = Churnet_graph.Dyngraph
module Models = Churnet_core.Models
module Streaming_model = Churnet_core.Streaming_model
module Flood = Churnet_core.Flood
module Scale = Churnet_experiments.Scale
module Prng = Churnet_util.Prng
module Bitset = Churnet_util.Bitset
module Intvec = Churnet_util.Intvec

(* ------------------------------------------------------------------ *)
(* Timing and allocation accounting.                                   *)
(* ------------------------------------------------------------------ *)

(* Words allocated so far: minor allocations plus direct major-heap
   allocations.  [promoted_words] is subtracted because promotion counts
   the same object in both [minor_words] and [major_words]. *)
let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let timed_with_words f =
  (* Empty the minor heap first: an object allocated *before* the region
     but promoted *during* it would inflate [promoted_words] without a
     matching in-region [minor_words] entry, making the delta depend on
     where the previous minor-GC boundary happened to fall.  With an
     empty minor heap at t0, everything promoted inside the region was
     also allocated inside it, so the delta is exact and repeatable. *)
  Gc.minor ();
  let w0 = allocated_words () in
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  (dt, allocated_words () -. w0)

(* ------------------------------------------------------------------ *)
(* Workload sizes, shared so compare.exe gates what kernels.exe reports. *)
(* ------------------------------------------------------------------ *)

let core_n = 2000
let core_d = 8
let core_jumps scale = Scale.pick scale ~smoke:30_000 ~standard:150_000 ~full:600_000
let snap_reps scale = Scale.pick scale ~smoke:30 ~standard:150 ~full:500
let scan_bits = 1 lsl 17
let scan_reps scale = Scale.pick scale ~smoke:60 ~standard:300 ~full:1_000
let flood_reps scale = Scale.pick scale ~smoke:20 ~standard:100 ~full:300

let flood_d = 3
(* Sparse SDG: low enough degree that floods develop the long
   near-complete tail of straggler rounds (the regime the frontier
   optimizes), high enough that they complete rather than go extinct. *)

(* ------------------------------------------------------------------ *)
(* Old flooding hop (hashtable informed set, list neighbors).          *)
(* ------------------------------------------------------------------ *)

(* The pre-optimization kernel, verbatim: hashtable informed set,
   list-returning neighbor queries, a fresh [newly] list per hop. *)
let old_expand_informed graph informed =
  let alive = Dyngraph.alive_count graph in
  let informed_alive = ref 0 in
  Hashtbl.iter
    (fun id () -> if Dyngraph.is_alive graph id then incr informed_alive)
    informed;
  let newly = ref [] in
  if !informed_alive <= alive - !informed_alive then
    Hashtbl.iter
      (fun u () ->
        if Dyngraph.is_alive graph u then
          List.iter
            (fun v -> if not (Hashtbl.mem informed v) then newly := v :: !newly)
            (Dyngraph.neighbors graph u))
      informed
  else
    Dyngraph.iter_alive graph (fun v ->
        if not (Hashtbl.mem informed v) then
          let touches_informed =
            List.exists
              (fun u -> Hashtbl.mem informed u)
              (Dyngraph.neighbors graph v)
          in
          if touches_informed then newly := v :: !newly);
  List.iter (fun v -> Hashtbl.replace informed v ()) !newly

(* ------------------------------------------------------------------ *)
(* Old bitset (byte store, bit-at-a-time iter).                        *)
(* ------------------------------------------------------------------ *)

(* The bitset as it was before the word-level scan, verbatim: same byte
   store, but [iter] tests all eight bits of every non-zero byte. *)
module Byte_bitset = struct
  type t = { mutable words : Bytes.t; mutable capacity : int; mutable cardinal : int }

  let create capacity =
    if capacity < 0 then invalid_arg "Byte_bitset.create";
    { words = Bytes.make ((capacity + 7) / 8) '\000'; capacity; cardinal = 0 }

  let add t i =
    if i < 0 || i >= t.capacity then invalid_arg "Byte_bitset.add";
    let byte = Char.code (Bytes.get t.words (i lsr 3)) in
    let mask = 1 lsl (i land 7) in
    if byte land mask = 0 then begin
      Bytes.set t.words (i lsr 3) (Char.chr (byte lor mask));
      t.cardinal <- t.cardinal + 1
    end

  let cardinal t = t.cardinal

  let iter f t =
    for b = 0 to Bytes.length t.words - 1 do
      let byte = Char.code (Bytes.get t.words b) in
      if byte <> 0 then
        for o = 0 to 7 do
          if byte land (1 lsl o) <> 0 then f ((b lsl 3) lor o)
        done
    done
end

(* ------------------------------------------------------------------ *)
(* Old graph core (hashtable arena).                                   *)
(* ------------------------------------------------------------------ *)

(* The hashtable-backed Dyngraph as it was before the arena rewrite
   (hooks and protocol helpers dropped; nothing here affects the PRNG
   draws).  Kill regeneration sorts the in-neighbors, i.e. it already
   uses the canonical order the arena reproduces, so both cores driven
   by equal seeds evolve through identical states. *)
module Hashtbl_core = struct
  type node = {
    id : int;
    birth : int;
    out_slots : int array;
    in_edges : (int, int) Hashtbl.t; (* src id -> multiplicity *)
  }

  type t = {
    d : int;
    regenerate : bool;
    rng : Prng.t;
    nodes : (int, node) Hashtbl.t;
    mutable alive : int array;
    mutable alive_len : int;
    alive_index : (int, int) Hashtbl.t;
    mutable next_id : int;
  }

  let create ~rng ~d ~regenerate () =
    {
      d;
      regenerate;
      rng;
      nodes = Hashtbl.create 1024;
      alive = Array.make 1024 (-1);
      alive_len = 0;
      alive_index = Hashtbl.create 1024;
      next_id = 0;
    }

  let alive_push t id =
    if t.alive_len = Array.length t.alive then begin
      let bigger = Array.make (2 * t.alive_len) (-1) in
      Array.blit t.alive 0 bigger 0 t.alive_len;
      t.alive <- bigger
    end;
    t.alive.(t.alive_len) <- id;
    Hashtbl.replace t.alive_index id t.alive_len;
    t.alive_len <- t.alive_len + 1

  let alive_remove t id =
    match Hashtbl.find_opt t.alive_index id with
    | None -> invalid_arg "Hashtbl_core: removing a dead node"
    | Some pos ->
        let last = t.alive_len - 1 in
        let moved = t.alive.(last) in
        t.alive.(pos) <- moved;
        Hashtbl.replace t.alive_index moved pos;
        t.alive_len <- last;
        Hashtbl.remove t.alive_index id

  let random_alive t =
    if t.alive_len = 0 then invalid_arg "Hashtbl_core.random_alive: empty";
    t.alive.(Prng.int t.rng t.alive_len)

  let random_alive_excluding t self =
    if t.alive_len = 0 then None
    else if t.alive_len = 1 && t.alive.(0) = self then None
    else begin
      let rec go () =
        let cand = t.alive.(Prng.int t.rng t.alive_len) in
        if cand = self then go () else cand
      in
      Some (go ())
    end

  let incr_in_edge target src =
    Hashtbl.replace target.in_edges src
      (1 + Option.value ~default:0 (Hashtbl.find_opt target.in_edges src))

  let decr_in_edge target src =
    match Hashtbl.find_opt target.in_edges src with
    | None -> ()
    | Some 1 -> Hashtbl.remove target.in_edges src
    | Some k -> Hashtbl.replace target.in_edges src (k - 1)

  let add_node t ~birth =
    let id = t.next_id in
    t.next_id <- id + 1;
    let node =
      { id; birth; out_slots = Array.make t.d (-1); in_edges = Hashtbl.create 8 }
    in
    for slot = 0 to t.d - 1 do
      match random_alive_excluding t id with
      | None -> ()
      | Some target_id ->
          node.out_slots.(slot) <- target_id;
          incr_in_edge (Hashtbl.find t.nodes target_id) id
    done;
    Hashtbl.replace t.nodes id node;
    alive_push t id;
    id

  let kill t id =
    let node = Hashtbl.find t.nodes id in
    alive_remove t id;
    Hashtbl.remove t.nodes id;
    Array.iter
      (fun target_id ->
        if target_id >= 0 then
          match Hashtbl.find_opt t.nodes target_id with
          | Some target -> decr_in_edge target id
          | None -> ())
      node.out_slots;
    let srcs = Hashtbl.fold (fun src _mult acc -> src :: acc) node.in_edges [] in
    let srcs = List.sort Int.compare srcs in
    List.iter
      (fun src_id ->
        match Hashtbl.find_opt t.nodes src_id with
        | None -> ()
        | Some src ->
            Array.iteri
              (fun slot target ->
                if target = id then begin
                  src.out_slots.(slot) <- -1;
                  if t.regenerate then
                    match random_alive_excluding t src_id with
                    | None -> ()
                    | Some fresh ->
                        src.out_slots.(slot) <- fresh;
                        incr_in_edge (Hashtbl.find t.nodes fresh) src_id
                end)
              src.out_slots)
      srcs

  let alive_ids t = Array.sub t.alive 0 t.alive_len

  let out_degree t id =
    let node = Hashtbl.find t.nodes id in
    Array.fold_left (fun acc s -> if s >= 0 then acc + 1 else acc) 0 node.out_slots

  let neighbors t id =
    let node = Hashtbl.find t.nodes id in
    let acc = ref [] in
    Array.iter (fun v -> if v >= 0 then acc := v :: !acc) node.out_slots;
    Hashtbl.iter (fun src _ -> acc := src :: !acc) node.in_edges;
    List.sort_uniq Int.compare !acc

  (* The old Dyngraph.snapshot up to (and including) building its
     structures: sorted ids, id->index hashtable, births, out-degrees
     and per-row sorted index arrays. *)
  let snapshot_arrays t =
    let ids = alive_ids t in
    Array.sort Int.compare ids;
    let n = Array.length ids in
    let index_of = Hashtbl.create (2 * n) in
    Array.iteri (fun i id -> Hashtbl.replace index_of id i) ids;
    let births = Array.map (fun id -> (Hashtbl.find t.nodes id).birth) ids in
    let out_deg = Array.map (fun id -> out_degree t id) ids in
    let adj =
      Array.map
        (fun id ->
          let neigh = neighbors t id in
          let arr = List.filter_map (fun v -> Hashtbl.find_opt index_of v) neigh in
          let arr = Array.of_list arr in
          Array.sort Int.compare arr;
          arr)
        ids
    in
    (ids, births, adj, out_deg)
end

(* ------------------------------------------------------------------ *)
(* Measurement: churn jumps + snapshot builds (arena vs hashtable).    *)
(* ------------------------------------------------------------------ *)

type core_metrics = {
  jumps : int;
  builds : int;
  churn_old_dt : float;
  churn_new_dt : float;
  churn_old_words : float;
  churn_new_words : float;
  snap_old_dt : float;
  snap_new_dt : float;
  snap_old_words : float;
  snap_new_words : float;
  edge_sink : int; (* anti-DCE witness: directed half-edges seen *)
}

(* One churn jump = one uniform death (with regeneration) + one birth:
   population pinned at [core_n], so the workload is stationary and the
   two cores stay state-identical step for step. *)
let measure_graph_core ~seed ~scale =
  let jumps = core_jumps scale and builds = snap_reps scale in
  let core_seed = seed lxor 0x60aed in
  let old_g =
    Hashtbl_core.create ~rng:(Prng.create core_seed) ~d:core_d ~regenerate:true ()
  in
  let new_g = Dyngraph.create ~rng:(Prng.create core_seed) ~d:core_d ~regenerate:true () in
  for i = 1 to core_n do
    ignore (Hashtbl_core.add_node old_g ~birth:i)
  done;
  for i = 1 to core_n do
    ignore (Dyngraph.add_node new_g ~birth:i)
  done;
  let churn_old_dt, churn_old_words =
    timed_with_words (fun () ->
        for i = 1 to jumps do
          Hashtbl_core.kill old_g (Hashtbl_core.random_alive old_g);
          ignore (Hashtbl_core.add_node old_g ~birth:(core_n + i))
        done)
  in
  let churn_new_dt, churn_new_words =
    timed_with_words (fun () ->
        for i = 1 to jumps do
          Dyngraph.kill new_g (Dyngraph.random_alive new_g);
          ignore (Dyngraph.add_node new_g ~birth:(core_n + i))
        done)
  in
  (* Identical draw sequences mean identical trajectories: check before
     trusting any timing. *)
  let old_ids = Hashtbl_core.alive_ids old_g in
  let new_ids = Dyngraph.alive_ids new_g in
  Array.sort Int.compare old_ids;
  Array.sort Int.compare new_ids;
  if old_ids <> new_ids then
    failwith "bench: hashtable and arena cores diverged (alive sets differ)";
  let edge_sink = ref 0 in
  let snap_old_dt, snap_old_words =
    timed_with_words (fun () ->
        for _ = 1 to builds do
          let _, _, adj, _ = Hashtbl_core.snapshot_arrays old_g in
          edge_sink := !edge_sink + Array.fold_left (fun a r -> a + Array.length r) 0 adj
        done)
  in
  let snap_new_dt, snap_new_words =
    timed_with_words (fun () ->
        for _ = 1 to builds do
          let s = Dyngraph.snapshot new_g in
          edge_sink := !edge_sink + (2 * Churnet_graph.Snapshot.edge_count s)
        done)
  in
  {
    jumps;
    builds;
    churn_old_dt;
    churn_new_dt;
    churn_old_words;
    churn_new_words;
    snap_old_dt;
    snap_new_dt;
    snap_old_words;
    snap_new_words;
    edge_sink = !edge_sink;
  }

(* ------------------------------------------------------------------ *)
(* Measurement: bitset scan (word-level vs byte-at-a-time).            *)
(* ------------------------------------------------------------------ *)

type scan_metrics = {
  bits : int;
  scans : int; (* total iter calls per side: 2 densities x reps *)
  scan_old_dt : float;
  scan_new_dt : float;
  scan_sink : int; (* anti-DCE witness: sum of visited indices *)
}

(* Two populations: a sparse one (the early rounds of a flood, where the
   zero-word skip dominates) and a half-full one (the late rounds, where
   the per-bit drain dominates). *)
let measure_bitset_scan ~seed ~scale =
  let bits = scan_bits and reps = scan_reps scale in
  let fill density_denom =
    let rng = Prng.create (seed lxor (0xb175e7 + density_denom)) in
    let old_bs = Byte_bitset.create bits in
    let new_bs = Bitset.create bits in
    for _ = 1 to bits / density_denom do
      let i = Prng.int rng bits in
      Byte_bitset.add old_bs i;
      Bitset.add new_bs i
    done;
    if Byte_bitset.cardinal old_bs <> Bitset.cardinal new_bs then
      failwith "bench: bitset populations diverged";
    (old_bs, new_bs)
  in
  let sparse_old, sparse_new = fill 64 in
  let half_old, half_new = fill 2 in
  let sink = ref 0 in
  let scan_pair old_bs new_bs =
    let old_sum = ref 0 and new_sum = ref 0 in
    let old_dt, _ =
      timed_with_words (fun () ->
          for _ = 1 to reps do
            Byte_bitset.iter (fun i -> old_sum := !old_sum + i) old_bs
          done)
    in
    let new_dt, _ =
      timed_with_words (fun () ->
          for _ = 1 to reps do
            Bitset.iter (fun i -> new_sum := !new_sum + i) new_bs
          done)
    in
    if !old_sum <> !new_sum then
      failwith "bench: word-level and byte-level bitset scans visited different sets";
    sink := !sink + !new_sum;
    (old_dt, new_dt)
  in
  let sparse_old_dt, sparse_new_dt = scan_pair sparse_old sparse_new in
  let half_old_dt, half_new_dt = scan_pair half_old half_new in
  {
    bits;
    scans = 2 * reps;
    scan_old_dt = sparse_old_dt +. half_old_dt;
    scan_new_dt = sparse_new_dt +. half_new_dt;
    scan_sink = !sink;
  }

(* ------------------------------------------------------------------ *)
(* Measurement: flooding hop (frontier vs full rescan).                *)
(* ------------------------------------------------------------------ *)

type flood_metrics = {
  floods : int;
  total_hops : int; (* summed flooding rounds across all floods, one side *)
  flood_old_dt : float;
  flood_new_dt : float;
  flood_old_words : float;
  flood_new_words : float;
}

let bs_mem bs id = id < Bitset.capacity bs && Bitset.mem bs id

let bs_prune graph bs =
  Bitset.iter (fun id -> if not (Dyngraph.is_alive graph id) then Bitset.remove bs id) bs

(* Complete synchronous floods (Definition 3.3) over a churning SDG
   model (no regeneration — the paper's hard case), source = the newborn
   of the starting round, run until the informed set covers the alive
   population.  SDG floods have a long near-complete tail: stragglers
   whose edges died wait many rounds for a newborn to reach them, so
   most rounds have a tiny uninformed set.  That tail is the synchronous
   driver's real workload, and where the frontier earns its keep: the
   old side is the pre-frontier round loop verbatim —
   [Flood.expand_informed] full rescan, churn, prune — whose rescan pays
   an O(alive) membership sweep every tail round just to find the
   handful of uninformed nodes; the new side is the adaptive round loop
   ([Flood.expand_informed_auto] plus edge-hook re-arming, as in
   [Flood.sync_round]), which scans only the (near-empty) frontier.
   Both sides run on separate equal-seeded models that consume the PRNG
   identically, so their floods must take the same number of rounds and
   inform sets of the same size — checked after every flood. *)
let measure_flood_hop ~seed ~scale =
  let reps = flood_reps scale in
  (* A fresh equal-seeded model pair per flood, as in the experiment
     harness (one model per trial): node ids — and with them the span of
     the informed/frontier bitsets — stay bounded by warm-up plus one
     flood's rounds instead of growing across repetitions.  Model
     construction and warm-up are not timed. *)
  let make rep =
    let m =
      Streaming_model.create
        ~rng:(Prng.create (seed lxor 0xf100d lxor (rep * 0x9e3779b9)))
        ~n:core_n ~d:flood_d ~regenerate:false ()
    in
    Streaming_model.warm_up m;
    m
  in
  let scratch = Intvec.create ~capacity:1024 () in
  let informed = Bitset.create (8 * core_n) in
  let frontier = Bitset.create (8 * core_n) in
  let max_rounds = 8 * core_n in
  (* Completion as in [Flood.run_custom]: informed covers everyone alive
     both before and after the last churn step — i.e. everyone except
     the newborn of that step, which cannot have been reached yet. *)
  let complete graph = Bitset.cardinal informed >= Dyngraph.alive_count graph - 1 in
  (* One flood with the pre-frontier driver; returns (rounds, informed). *)
  let flood_old m =
    let graph = Streaming_model.graph m in
    Streaming_model.step m;
    let source = Streaming_model.newest m in
    Bitset.clear informed;
    Bitset.ensure_capacity informed (source + 1);
    Bitset.add informed source;
    let rounds = ref 0 in
    while
      Bitset.cardinal informed > 0
      && (not (complete graph))
      && !rounds < max_rounds
    do
      Flood.expand_informed graph informed scratch;
      Streaming_model.step m;
      bs_prune graph informed;
      incr rounds
    done;
    (!rounds, Bitset.cardinal informed)
  in
  let arm bs id =
    Bitset.ensure_capacity bs (id + 1);
    Bitset.add bs id
  in
  let flood_new m =
    let graph = Streaming_model.graph m in
    Streaming_model.step m;
    let source = Streaming_model.newest m in
    Bitset.clear informed;
    Bitset.clear frontier;
    Bitset.ensure_capacity informed (source + 1);
    Bitset.add informed source;
    arm frontier source;
    let rounds = ref 0 in
    while
      Bitset.cardinal informed > 0
      && (not (complete graph))
      && !rounds < max_rounds
    do
      Flood.expand_informed_auto graph informed frontier scratch;
      let prev = Dyngraph.edge_hook graph in
      Dyngraph.set_edge_hook graph
        (Some
           (fun ~src ~dst ->
             (match prev with None -> () | Some f -> f ~src ~dst);
             let si = bs_mem informed src and di = bs_mem informed dst in
             if si && not di then arm frontier src
             else if di && not si then arm frontier dst));
      Streaming_model.step m;
      Dyngraph.set_edge_hook graph prev;
      bs_prune graph informed;
      incr rounds
    done;
    (!rounds, Bitset.cardinal informed)
  in
  (* One untimed warm flood per side, with an equivalence check before
     any timing is trusted. *)
  let r0_old = flood_old (make 0) in
  let r0_new = flood_new (make 0) in
  if r0_old <> r0_new then
    failwith "bench: frontier and full-rescan floods diverged on the warm-up flood";
  let total_hops = ref 0 and new_hops = ref 0 in
  let flood_old_dt = ref 0. and flood_old_words = ref 0. in
  let flood_new_dt = ref 0. and flood_new_words = ref 0. in
  for rep = 1 to reps do
    let old_m = make rep and new_m = make rep in
    let dt, words =
      timed_with_words (fun () ->
          let rounds, _ = flood_old old_m in
          total_hops := !total_hops + rounds)
    in
    flood_old_dt := !flood_old_dt +. dt;
    flood_old_words := !flood_old_words +. words;
    let dt, words =
      timed_with_words (fun () ->
          let rounds, _ = flood_new new_m in
          new_hops := !new_hops + rounds)
    in
    flood_new_dt := !flood_new_dt +. dt;
    flood_new_words := !flood_new_words +. words
  done;
  if !total_hops <> !new_hops then
    failwith "bench: frontier and full-rescan floods took different round counts";
  {
    floods = reps;
    total_hops = !total_hops;
    flood_old_dt = !flood_old_dt;
    flood_new_dt = !flood_new_dt;
    flood_old_words = !flood_old_words;
    flood_new_words = !flood_new_words;
  }

(* ------------------------------------------------------------------ *)
(* Measurement: batched churn (decide_batch + churn_batch vs per-jump). *)
(* ------------------------------------------------------------------ *)

module Poisson_model = Churnet_core.Poisson_model
module Codec = Churnet_util.Codec
module Stream_stats = Churnet_graph.Stream_stats
module Snapshot = Churnet_graph.Snapshot
module Metrics = Churnet_graph.Metrics

type batched_metrics = {
  bjumps : int;
  batched_old_dt : float;
  batched_new_dt : float;
  batched_old_words : float;
  batched_new_words : float;
}

let batched_n = 10_000
let batched_d = 3

let batched_jumps scale =
  Scale.pick scale ~smoke:50_000 ~standard:200_000 ~full:600_000 ~xl:2_000_000

let encoded_model m =
  let w = Codec.writer () in
  Poisson_model.encode w m;
  Codec.contents w

(* Old side: the per-jump runner ([step] in a loop).  New side: the
   batched runner (bulk [decide_batch] draws applied through
   [Dyngraph.churn_batch]).  Both sides run equal-seeded PDGR models, so
   after the measured runs the full checkpoint encodings — topology, both
   PRNG streams, clock, pending jump — must be byte-equal; anything less
   and the timings are meaningless. *)
let measure_churn_batched ~seed ~scale =
  let jumps = batched_jumps scale in
  let mk () =
    Poisson_model.create
      ~rng:(Prng.create (seed lxor 0xba7c4))
      ~n:batched_n ~d:batched_d ~regenerate:true ()
  in
  let old_m = mk () and new_m = mk () in
  (* Untimed warm-up, each side through its own path: the state-identity
     check below then covers the warm-up too. *)
  Poisson_model.warm_up old_m;
  Poisson_model.warm_up_batched new_m;
  let batched_old_dt, batched_old_words =
    timed_with_words (fun () -> Poisson_model.run_rounds old_m jumps)
  in
  let batched_new_dt, batched_new_words =
    timed_with_words (fun () -> Poisson_model.run_rounds_batched new_m jumps)
  in
  if encoded_model old_m <> encoded_model new_m then
    failwith "bench: batched and per-jump churn diverged (encodings differ)";
  { bjumps = jumps; batched_old_dt; batched_new_dt; batched_old_words; batched_new_words }

(* ------------------------------------------------------------------ *)
(* Measurement: streaming snapshot statistics (arena pass vs CSR).      *)
(* ------------------------------------------------------------------ *)

type stream_metrics = {
  stat_reps : int;
  stream_old_dt : float;
  stream_new_dt : float;
  stream_old_words : float;
  stream_new_words : float;
  stat_sink : int; (* anti-DCE witness: summed isolated counts *)
}

let stream_reps scale = Scale.pick scale ~smoke:30 ~standard:150 ~full:500 ~xl:500

(* Old side: what the experiment cells did before — materialize the CSR
   snapshot, then derive histogram, gini, mean/max degree and the
   isolated count from it.  New side: [Stream_stats.collect], one
   row-local pass over the arena.  Equality of every statistic (floats
   bitwise) is asserted before any timing is trusted. *)
let measure_stream_stats ~seed ~scale =
  let reps = stream_reps scale in
  let m =
    Poisson_model.create
      ~rng:(Prng.create (seed lxor 0x57a75))
      ~n:core_n ~d:batched_d ~regenerate:false ()
  in
  Poisson_model.warm_up_batched m;
  let g = Poisson_model.graph m in
  let old_stats () =
    let s = Poisson_model.snapshot m in
    ( Snapshot.n s,
      List.length (Snapshot.isolated s),
      Snapshot.max_degree s,
      Snapshot.mean_degree s,
      Snapshot.degree_histogram s,
      Metrics.degree_gini s )
  in
  let pop, iso, maxd, mean, hist, gini = old_stats () in
  let st = Stream_stats.collect g in
  if
    st.Stream_stats.population <> pop
    || st.Stream_stats.isolated <> iso
    || st.Stream_stats.max_degree <> maxd
    || Int64.bits_of_float st.Stream_stats.mean_degree <> Int64.bits_of_float mean
    || st.Stream_stats.degree_histogram <> hist
    || Int64.bits_of_float st.Stream_stats.degree_gini <> Int64.bits_of_float gini
  then failwith "bench: streaming and CSR snapshot statistics diverged";
  let sink = ref 0 in
  let stream_old_dt, stream_old_words =
    timed_with_words (fun () ->
        for _ = 1 to reps do
          let _, iso, _, _, _, _ = old_stats () in
          sink := !sink + iso
        done)
  in
  let stream_new_dt, stream_new_words =
    timed_with_words (fun () ->
        for _ = 1 to reps do
          let st = Stream_stats.collect g in
          sink := !sink + st.Stream_stats.isolated
        done)
  in
  {
    stat_reps = reps;
    stream_old_dt;
    stream_new_dt;
    stream_old_words;
    stream_new_words;
    stat_sink = !sink;
  }

(* ------------------------------------------------------------------ *)
(* Derived metric values, shared between kernels.exe and compare.exe.  *)
(* ------------------------------------------------------------------ *)

let per_jump_ns c dt = dt *. 1e9 /. float_of_int c.jumps
let per_build_us c dt = dt *. 1e6 /. float_of_int c.builds
let words_per_jump c w = w /. float_of_int c.jumps
let per_scan_us s dt = dt *. 1e6 /. float_of_int s.scans

let per_hop_ns f dt = dt *. 1e9 /. float_of_int f.total_hops
let words_per_hop f w = w /. float_of_int f.total_hops

let per_bjump_ns b dt = dt *. 1e9 /. float_of_int b.bjumps
let words_per_bjump b w = w /. float_of_int b.bjumps
let per_stat_us s dt = dt *. 1e6 /. float_of_int s.stat_reps
