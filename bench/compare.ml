(* compare.exe: the perf regression gate.

   Re-measures the kernel head-to-heads through the same [Bench_refs]
   harness as kernels.exe (median of CHURNET_COMPARE_REPEATS fresh
   repeats, default 3), diffs the result against the blessed baseline in
   bench/baseline/<scale>.json, writes a churnet-compare/1 JSON report
   and exits non-zero when any gated metric regressed beyond its
   tolerance.

   What gates and what does not: absolute wall-clock numbers depend on
   the machine running the job, so they are recorded informationally
   (tolerance null) and never gate.  The gate rides metrics that are
   machine-portable:

   - old-vs-new speedup ratios.  Both sides run on the same machine in
     the same process, so the ratio cancels the machine out; the old
     sides are the pre-optimization implementations kept verbatim in
     [Bench_refs].
   - exact allocation counts (words per operation).  The workloads are
     PRNG-deterministic, so allocations are reproducible to the word.

   Usage: compare [--bless] [--baseline FILE] [--out FILE]

   --bless re-measures and (over)writes the baseline file instead of
   gating — the documented re-bless workflow after an intentional
   performance change (see DESIGN.md).

   Env: CHURNET_BENCH_SCALE / CHURNET_BENCH_SEED as for kernels.exe;
   CHURNET_COMPARE_REPEATS overrides the repeat count;
   CHURNET_COMPARE_HANDICAP="churn=2.0,flood_hop=1.5" multiplies the
   new-side measured time of the named kernel groups (churn, snapshot,
   flood_hop, bitset_scan, churn_batched, stream_stats) — a synthetic
   slowdown used by CI to prove the gate actually fails. *)

module Scale = Churnet_experiments.Scale
module Json = Churnet_util.Json
module Stats = Churnet_util.Stats
module Refs = Bench_refs

let scale =
  match Sys.getenv_opt "CHURNET_BENCH_SCALE" with
  | Some s -> (
      match Scale.of_string s with
      | Some v -> v
      | None ->
          Printf.eprintf "compare: bad CHURNET_BENCH_SCALE %S\n" s;
          exit 2)
  | None -> Scale.Smoke

let seed =
  match Sys.getenv_opt "CHURNET_BENCH_SEED" with
  | Some s -> int_of_string s
  | None -> 42

let repeats =
  match Sys.getenv_opt "CHURNET_COMPARE_REPEATS" with
  | Some s ->
      let k = int_of_string s in
      if k < 1 then begin
        Printf.eprintf "compare: CHURNET_COMPARE_REPEATS must be >= 1\n";
        exit 2
      end;
      k
  | None -> 3

(* ------------------------------------------------------------------ *)
(* Synthetic handicap (CI self-test).                                  *)
(* ------------------------------------------------------------------ *)

let handicap_groups =
  [ "churn"; "snapshot"; "flood_hop"; "bitset_scan"; "churn_batched"; "stream_stats" ]

let handicaps =
  match Sys.getenv_opt "CHURNET_COMPARE_HANDICAP" with
  | None | Some "" -> []
  | Some spec ->
      String.split_on_char ',' spec
      |> List.map (fun part ->
             match String.split_on_char '=' (String.trim part) with
             | [ group; factor ] when List.mem group handicap_groups -> (
                 match float_of_string_opt factor with
                 | Some f when f > 0. -> (group, f)
                 | _ ->
                     Printf.eprintf "compare: bad handicap factor in %S\n" part;
                     exit 2)
             | _ ->
                 Printf.eprintf
                   "compare: bad CHURNET_COMPARE_HANDICAP entry %S (want \
                    group=factor with group one of %s)\n"
                   part
                   (String.concat "|" handicap_groups);
                 exit 2)

let handicap group = match List.assoc_opt group handicaps with Some f -> f | None -> 1.

(* ------------------------------------------------------------------ *)
(* Metric catalogue.                                                   *)
(* ------------------------------------------------------------------ *)

type direction = Higher | Lower

let direction_to_string = function Higher -> "higher" | Lower -> "lower"

let direction_of_string = function
  | "higher" -> Some Higher
  | "lower" -> Some Lower
  | _ -> None

type metric = {
  name : string;
  direction : direction;
  default_tolerance : float option;
      (* None = informational: recorded in baseline and report, never
         gated.  Some tol = gated; the tolerance actually applied comes
         from the baseline file, so it can be tuned without recompiling. *)
  value : float;
}

(* Median over repeats so one background-load spike cannot fail the
   gate (or bless a lucky outlier). *)
let median xs = Stats.median (Array.of_list xs)

let measure () =
  let samples = List.init repeats (fun _ ->
      let c = Refs.measure_graph_core ~seed ~scale in
      let s = Refs.measure_bitset_scan ~seed ~scale in
      let f = Refs.measure_flood_hop ~seed ~scale in
      let b = Refs.measure_churn_batched ~seed ~scale in
      let st = Refs.measure_stream_stats ~seed ~scale in
      (c, s, f, b, st))
  in
  let med proj = median (List.map proj samples) in
  let churn_h = handicap "churn" and snap_h = handicap "snapshot" in
  let flood_h = handicap "flood_hop" and scan_h = handicap "bitset_scan" in
  let batch_h = handicap "churn_batched" and stream_h = handicap "stream_stats" in
  [
    {
      name = "churn_speedup";
      direction = Higher;
      default_tolerance = Some 0.35;
      value = med (fun (c, _, _, _, _) -> c.Refs.churn_old_dt /. (c.Refs.churn_new_dt *. churn_h));
    };
    {
      name = "snapshot_speedup";
      direction = Higher;
      default_tolerance = Some 0.35;
      value = med (fun (c, _, _, _, _) -> c.Refs.snap_old_dt /. (c.Refs.snap_new_dt *. snap_h));
    };
    {
      name = "bitset_scan_speedup";
      direction = Higher;
      default_tolerance = Some 0.35;
      value = med (fun (_, s, _, _, _) -> s.Refs.scan_old_dt /. (s.Refs.scan_new_dt *. scan_h));
    };
    {
      name = "flood_hop_speedup";
      direction = Higher;
      default_tolerance = Some 0.35;
      value = med (fun (_, _, f, _, _) -> f.Refs.flood_old_dt /. (f.Refs.flood_new_dt *. flood_h));
    };
    {
      name = "churn_words_per_jump";
      direction = Lower;
      default_tolerance = Some 0.02;
      value = med (fun (c, _, _, _, _) -> Refs.words_per_jump c c.Refs.churn_new_words);
    };
    {
      name = "flood_words_per_hop";
      direction = Lower;
      default_tolerance = Some 0.02;
      value = med (fun (_, _, f, _, _) -> Refs.words_per_hop f f.Refs.flood_new_words);
    };
    {
      name = "churn_batched_speedup";
      direction = Higher;
      default_tolerance = Some 0.35;
      value =
        med (fun (_, _, _, b, _) ->
            b.Refs.batched_old_dt /. (b.Refs.batched_new_dt *. batch_h));
    };
    {
      name = "stream_stats_speedup";
      direction = Higher;
      default_tolerance = Some 0.35;
      value =
        med (fun (_, _, _, _, st) ->
            st.Refs.stream_old_dt /. (st.Refs.stream_new_dt *. stream_h));
    };
    {
      name = "churn_batched_words_per_jump";
      direction = Lower;
      default_tolerance = Some 0.02;
      value = med (fun (_, _, _, b, _) -> Refs.words_per_bjump b b.Refs.batched_new_words);
    };
    {
      name = "churn_jump_new_ns";
      direction = Lower;
      default_tolerance = None;
      value = med (fun (c, _, _, _, _) -> Refs.per_jump_ns c (c.Refs.churn_new_dt *. churn_h));
    };
    {
      name = "snapshot_new_us";
      direction = Lower;
      default_tolerance = None;
      value = med (fun (c, _, _, _, _) -> Refs.per_build_us c (c.Refs.snap_new_dt *. snap_h));
    };
    {
      name = "bitset_scan_new_us";
      direction = Lower;
      default_tolerance = None;
      value = med (fun (_, s, _, _, _) -> Refs.per_scan_us s (s.Refs.scan_new_dt *. scan_h));
    };
    {
      name = "flood_hop_new_ns";
      direction = Lower;
      default_tolerance = None;
      value = med (fun (_, _, f, _, _) -> Refs.per_hop_ns f (f.Refs.flood_new_dt *. flood_h));
    };
    {
      name = "churn_batched_new_ns";
      direction = Lower;
      default_tolerance = None;
      value =
        med (fun (_, _, _, b, _) -> Refs.per_bjump_ns b (b.Refs.batched_new_dt *. batch_h));
    };
    {
      name = "stream_stats_new_us";
      direction = Lower;
      default_tolerance = None;
      value =
        med (fun (_, _, _, _, st) -> Refs.per_stat_us st (st.Refs.stream_new_dt *. stream_h));
    };
  ]

(* ------------------------------------------------------------------ *)
(* Baseline file (churnet-baseline/1).                                 *)
(* ------------------------------------------------------------------ *)

let baseline_schema = "churnet-baseline/1"
let compare_schema = "churnet-compare/1"

let write_baseline path metrics =
  let doc =
    Json.Obj
      [
        ("schema", Json.String baseline_schema);
        ("scale", Json.String (Scale.to_string scale));
        ( "blessed",
          Json.Obj
            [
              ("seed", Json.Int seed);
              ("repeats", Json.Int repeats);
              ( "workload",
                Json.Obj
                  [
                    ("n", Json.Int Refs.core_n);
                    ("d", Json.Int Refs.core_d);
                    ("jumps", Json.Int (Refs.core_jumps scale));
                    ("snapshot_builds", Json.Int (Refs.snap_reps scale));
                    ("scan_bits", Json.Int Refs.scan_bits);
                    ("scan_reps", Json.Int (Refs.scan_reps scale));
                    ("flood_d", Json.Int Refs.flood_d);
                    ("flood_reps", Json.Int (Refs.flood_reps scale));
                    ("batched_n", Json.Int Refs.batched_n);
                    ("batched_d", Json.Int Refs.batched_d);
                    ("batched_jumps", Json.Int (Refs.batched_jumps scale));
                    ("stream_reps", Json.Int (Refs.stream_reps scale));
                  ] );
            ] );
        ( "metrics",
          Json.Obj
            (List.map
               (fun m ->
                 ( m.name,
                   Json.Obj
                     [
                       ("value", Json.of_finite m.value);
                       ( "tolerance",
                         match m.default_tolerance with
                         | Some tol -> Json.Float tol
                         | None -> Json.Null );
                       ("direction", Json.String (direction_to_string m.direction));
                     ] ))
               metrics) );
      ]
  in
  Json.write_file ~pretty:true path doc

type baseline_entry = {
  b_value : float;
  b_tolerance : float option;
  b_direction : direction;
}

let read_baseline path =
  let contents =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg ->
      Printf.eprintf "compare: cannot read baseline %s: %s\n" path msg;
      Printf.eprintf
        "compare: bless one first: dune exec bench/compare.exe -- --bless\n";
      exit 2
  in
  let doc =
    match Json.of_string contents with
    | Ok d -> d
    | Error msg ->
        Printf.eprintf "compare: malformed baseline %s: %s\n" path msg;
        exit 2
  in
  let fail why =
    Printf.eprintf "compare: baseline %s: %s\n" path why;
    exit 2
  in
  (match Option.bind (Json.member "schema" doc) Json.as_string with
  | Some s when s = baseline_schema -> ()
  | Some s -> fail (Printf.sprintf "schema %S, want %S" s baseline_schema)
  | None -> fail "missing schema");
  (match Option.bind (Json.member "scale" doc) Json.as_string with
  | Some s when s = Scale.to_string scale -> ()
  | Some s ->
      fail
        (Printf.sprintf "blessed at scale %S but comparing at %S" s
           (Scale.to_string scale))
  | None -> fail "missing scale");
  match Json.member "metrics" doc with
  | Some (Json.Obj entries) ->
      List.filter_map
        (fun (name, entry) ->
          match
            ( Option.bind (Json.member "value" entry) Json.as_float,
              Option.bind (Json.member "direction" entry) Json.as_string )
          with
          | Some b_value, Some dir -> (
              match direction_of_string dir with
              | None -> fail (Printf.sprintf "metric %s: bad direction %S" name dir)
              | Some b_direction ->
                  let b_tolerance =
                    match Json.member "tolerance" entry with
                    | Some Json.Null | None -> None
                    | Some v -> Json.as_float v
                  in
                  Some (name, { b_value; b_tolerance; b_direction }))
          | _ -> fail (Printf.sprintf "metric %s: missing value/direction" name))
        entries
  | _ -> fail "missing metrics object"

(* ------------------------------------------------------------------ *)
(* Gate.                                                               *)
(* ------------------------------------------------------------------ *)

type status = Ok_gated | Regression | Info | Missing_baseline

let status_to_string = function
  | Ok_gated -> "ok"
  | Regression -> "regression"
  | Info -> "info"
  | Missing_baseline -> "missing-baseline"

let judge baseline m =
  match List.assoc_opt m.name baseline with
  | None ->
      (* A metric the blessed file predates: report it, gate nothing.
         The next re-bless picks it up. *)
      (Missing_baseline, None, None)
  | Some b -> (
      match b.b_tolerance with
      | None -> (Info, Some b.b_value, None)
      | Some tol ->
          let ok =
            match b.b_direction with
            | Higher -> m.value >= b.b_value *. (1. -. tol)
            | Lower -> m.value <= b.b_value *. (1. +. tol)
          in
          ((if ok then Ok_gated else Regression), Some b.b_value, Some tol))

let () =
  let bless = ref false in
  let baseline_path = ref (Filename.concat "bench/baseline" (Scale.to_string scale ^ ".json")) in
  let out_path = ref (Printf.sprintf "COMPARE_%d_%s.json" seed (Scale.to_string scale)) in
  let usage = "compare [--bless] [--baseline FILE] [--out FILE]" in
  let spec =
    [
      ("--bless", Arg.Set bless, " measure and (over)write the baseline, gate nothing");
      ( "--baseline",
        Arg.String (fun s -> baseline_path := s),
        "FILE baseline to diff against / bless (default bench/baseline/<scale>.json)" );
      ( "--out",
        Arg.String (fun s -> out_path := s),
        "FILE churnet-compare/1 report path (default COMPARE_<seed>_<scale>.json)" );
    ]
  in
  (try
     Arg.parse spec
       (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
       usage
   with Arg.Bad msg ->
     prerr_string msg;
     exit 2);
  Printf.printf "compare: scale %s, seed %d, median of %d repeat(s)\n%!"
    (Scale.to_string scale) seed repeats;
  if handicaps <> [] then
    Printf.printf "compare: SYNTHETIC HANDICAP active: %s\n%!"
      (String.concat ", "
         (List.map (fun (g, f) -> Printf.sprintf "%s x%.2f" g f) handicaps));
  let metrics = measure () in
  if !bless then begin
    write_baseline !baseline_path metrics;
    List.iter
      (fun m ->
        Printf.printf "  blessed %-22s %10.2f (%s)\n" m.name m.value
          (match m.default_tolerance with
          | Some tol -> Printf.sprintf "gated, tolerance %.0f%%" (tol *. 100.)
          | None -> "informational"))
      metrics;
    Printf.printf "compare: wrote baseline %s\n" !baseline_path;
    exit 0
  end;
  let baseline = read_baseline !baseline_path in
  let judged = List.map (fun m -> (m, judge baseline m)) metrics in
  let regressions =
    List.filter_map
      (fun (m, (st, _, _)) -> if st = Regression then Some m.name else None)
      judged
  in
  List.iter
    (fun (m, (st, b_value, tol)) ->
      Printf.printf "  %-12s %-22s measured %10.2f  baseline %10s%s\n"
        ("[" ^ status_to_string st ^ "]")
        m.name m.value
        (match b_value with Some b -> Printf.sprintf "%.2f" b | None -> "-")
        (match tol with
        | Some t -> Printf.sprintf "  tolerance %.0f%%" (t *. 100.)
        | None -> ""))
    judged;
  let doc =
    Json.Obj
      [
        ("schema", Json.String compare_schema);
        ("scale", Json.String (Scale.to_string scale));
        ("seed", Json.Int seed);
        ("repeats", Json.Int repeats);
        ("baseline", Json.String !baseline_path);
        ( "handicap",
          if handicaps = [] then Json.Null
          else
            Json.Obj (List.map (fun (g, f) -> (g, Json.Float f)) handicaps) );
        ( "metrics",
          Json.Arr
            (List.map
               (fun (m, (st, b_value, tol)) ->
                 Json.Obj
                   [
                     ("name", Json.String m.name);
                     ("measured", Json.of_finite m.value);
                     ( "baseline",
                       match b_value with Some b -> Json.of_finite b | None -> Json.Null
                     );
                     ( "tolerance",
                       match tol with Some t -> Json.Float t | None -> Json.Null );
                     ("direction", Json.String (direction_to_string m.direction));
                     ("status", Json.String (status_to_string st));
                   ])
               judged) );
        ("regressions", Json.Arr (List.map (fun n -> Json.String n) regressions));
        ("ok", Json.Bool (regressions = []));
      ]
  in
  Json.write_file ~pretty:true !out_path doc;
  Printf.printf "compare: wrote report %s\n" !out_path;
  if regressions <> [] then begin
    Printf.printf "compare: PERF REGRESSION in %s\n" (String.concat ", " regressions);
    exit 1
  end;
  print_endline "compare: all gated metrics within tolerance"
