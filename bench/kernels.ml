(* Kernel head-to-heads for the allocation-free simulation kernels and
   the deterministic multicore replication layer.

   Part 1 (Bechamel): old-vs-new [expand_informed] — the historical
   hashtable + list-returning-neighbors kernel (kept verbatim below as
   the baseline) against [Flood.expand_informed] (bitset informed set +
   allocation-free neighbor iteration).

   Part 2 (wall clock): the E10 experiment (SDGR flooding completion)
   run serially (CHURNET_DOMAINS=1) and in parallel (CHURNET_DOMAINS=4),
   with the rendered reports compared byte-for-byte: the replication
   layer pre-splits one PRNG per trial, so the parallel run must be
   bit-identical to the serial one.

   Part 3 (wall clock + GC): the slot-arena graph core against the
   pre-arena hashtable core (kept verbatim below as [Hashtbl_core]):
   churn-jump throughput, snapshot build, and words allocated per jump.
   Both cores use the canonical regeneration order, so they consume the
   PRNG identically — the benchmark asserts the final alive sets match
   before trusting the timings, and writes the numbers to
   KERNELS_<seed>_<scale>.json (override with CHURNET_KERNELS_JSON).

   Scale via CHURNET_BENCH_SCALE=smoke|standard|full (default standard)
   and CHURNET_BENCH_SEED (default 42). *)

open Bechamel
open Bechamel.Toolkit
module Dyngraph = Churnet_graph.Dyngraph
module Models = Churnet_core.Models
module Flood = Churnet_core.Flood
module Registry = Churnet_experiments.Registry
module Report = Churnet_experiments.Report
module Scale = Churnet_experiments.Scale
module Prng = Churnet_util.Prng
module Bitset = Churnet_util.Bitset
module Intvec = Churnet_util.Intvec

let scale =
  match Sys.getenv_opt "CHURNET_BENCH_SCALE" with
  | Some s -> (
      match Scale.of_string s with
      | Some v -> v
      | None -> failwith (Printf.sprintf "bad CHURNET_BENCH_SCALE %S" s))
  | None -> Scale.Standard

let seed =
  match Sys.getenv_opt "CHURNET_BENCH_SEED" with
  | Some s -> int_of_string s
  | None -> 42

(* ------------------------------------------------------------------ *)
(* Part 1: old vs new expand_informed.                                 *)
(* ------------------------------------------------------------------ *)

(* The pre-optimization kernel, verbatim: hashtable informed set,
   list-returning neighbor queries, a fresh [newly] list per hop. *)
let old_expand_informed graph informed =
  let alive = Dyngraph.alive_count graph in
  let informed_alive = ref 0 in
  Hashtbl.iter
    (fun id () -> if Dyngraph.is_alive graph id then incr informed_alive)
    informed;
  let newly = ref [] in
  if !informed_alive <= alive - !informed_alive then
    Hashtbl.iter
      (fun u () ->
        if Dyngraph.is_alive graph u then
          List.iter
            (fun v -> if not (Hashtbl.mem informed v) then newly := v :: !newly)
            (Dyngraph.neighbors graph u))
      informed
  else
    Dyngraph.iter_alive graph (fun v ->
        if not (Hashtbl.mem informed v) then
          let touches_informed =
            List.exists
              (fun u -> Hashtbl.mem informed u)
              (Dyngraph.neighbors graph v)
          in
          if touches_informed then newly := v :: !newly);
  List.iter (fun v -> Hashtbl.replace informed v ()) !newly

let kernel_tests () =
  let n = 2000 and d = 8 in
  let m = Models.create ~rng:(Prng.create 9) Models.SDGR ~n ~d in
  Models.warm_up m;
  let graph = Models.graph m in
  let alive = Dyngraph.alive_ids graph in
  (* Seed informed sets of two sizes: a sparse one (the early rounds of a
     flood, informed-side scan) and a half-covered one (the late rounds,
     uninformed-side scan). *)
  let seed_set k = Array.sub alive 0 (max 1 (Array.length alive / k)) in
  let sparse = seed_set 50 in
  let half = seed_set 2 in
  let informed_bs = Bitset.create n in
  let scratch = Intvec.create ~capacity:1024 () in
  let new_hop seed_ids () =
    Bitset.clear informed_bs;
    Array.iter
      (fun id ->
        Bitset.ensure_capacity informed_bs (id + 1);
        Bitset.add informed_bs id)
      seed_ids;
    Flood.expand_informed graph informed_bs scratch;
    ignore (Bitset.cardinal informed_bs)
  in
  let old_hop seed_ids () =
    let informed = Hashtbl.create 1024 in
    Array.iter (fun id -> Hashtbl.replace informed id ()) seed_ids;
    old_expand_informed graph informed;
    ignore (Hashtbl.length informed)
  in
  [
    Test.make ~name:"expand sparse old (hashtbl+lists)" (Staged.stage (old_hop sparse));
    Test.make ~name:"expand sparse new (bitset+iters)" (Staged.stage (new_hop sparse));
    Test.make ~name:"expand half old (hashtbl+lists)" (Staged.stage (old_hop half));
    Test.make ~name:"expand half new (bitset+iters)" (Staged.stage (new_hop half));
  ]

let run_bechamel () =
  print_endline "==================== KERNELS (Bechamel) ====================";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let grouped = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (kernel_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  let table = Churnet_util.Table.create [ "benchmark"; "time per run" ] in
  (match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None -> ()
  | Some by_name ->
      let rows =
        Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) by_name []
      in
      let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
      List.iter
        (fun (name, ols_result) ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) ->
                if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
                else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
                else Printf.sprintf "%.0f ns" t
            | _ -> "n/a"
          in
          Churnet_util.Table.add_row table [ name; estimate ])
        rows);
  Churnet_util.Table.print table

(* ------------------------------------------------------------------ *)
(* Part 2: serial vs parallel E10, bit-identical by construction.      *)
(* ------------------------------------------------------------------ *)

let run_e10 ~domains =
  Unix.putenv "CHURNET_DOMAINS" (string_of_int domains);
  let entry =
    match Registry.find "E10" with Some e -> e | None -> failwith "E10 not registered"
  in
  let t0 = Unix.gettimeofday () in
  let report = entry.Registry.run ~seed ~scale in
  let dt = Unix.gettimeofday () -. t0 in
  (Report.render report, dt)

let run_replication () =
  print_newline ();
  print_endline "==================== REPLICATION (E10 serial vs parallel) ====================";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "scale %s, seed %d, %d core(s) available\n%!" (Scale.to_string scale)
    seed cores;
  let serial_render, serial_dt = run_e10 ~domains:1 in
  Printf.printf "  CHURNET_DOMAINS=1: %.2fs\n%!" serial_dt;
  let par_render, par_dt = run_e10 ~domains:4 in
  Printf.printf "  CHURNET_DOMAINS=4: %.2fs\n%!" par_dt;
  Printf.printf "  speedup: %.2fx%s\n" (serial_dt /. par_dt)
    (if cores < 2 then " (single-core host: no wall-clock gain expected)" else "");
  if String.equal serial_render par_render then
    print_endline "  reports bit-identical across domain counts: OK"
  else begin
    print_endline "  MISMATCH: serial and parallel E10 reports differ!";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 3: slot-arena graph core vs the pre-arena hashtable core.      *)
(* ------------------------------------------------------------------ *)

(* The hashtable-backed Dyngraph as it was before the arena rewrite
   (hooks and protocol helpers dropped; nothing here affects the PRNG
   draws).  Kill regeneration sorts the in-neighbors, i.e. it already
   uses the canonical order the arena reproduces, so both cores driven
   by equal seeds evolve through identical states. *)
module Hashtbl_core = struct
  type node = {
    id : int;
    birth : int;
    out_slots : int array;
    in_edges : (int, int) Hashtbl.t; (* src id -> multiplicity *)
  }

  type t = {
    d : int;
    regenerate : bool;
    rng : Prng.t;
    nodes : (int, node) Hashtbl.t;
    mutable alive : int array;
    mutable alive_len : int;
    alive_index : (int, int) Hashtbl.t;
    mutable next_id : int;
  }

  let create ~rng ~d ~regenerate () =
    {
      d;
      regenerate;
      rng;
      nodes = Hashtbl.create 1024;
      alive = Array.make 1024 (-1);
      alive_len = 0;
      alive_index = Hashtbl.create 1024;
      next_id = 0;
    }

  let alive_push t id =
    if t.alive_len = Array.length t.alive then begin
      let bigger = Array.make (2 * t.alive_len) (-1) in
      Array.blit t.alive 0 bigger 0 t.alive_len;
      t.alive <- bigger
    end;
    t.alive.(t.alive_len) <- id;
    Hashtbl.replace t.alive_index id t.alive_len;
    t.alive_len <- t.alive_len + 1

  let alive_remove t id =
    match Hashtbl.find_opt t.alive_index id with
    | None -> invalid_arg "Hashtbl_core: removing a dead node"
    | Some pos ->
        let last = t.alive_len - 1 in
        let moved = t.alive.(last) in
        t.alive.(pos) <- moved;
        Hashtbl.replace t.alive_index moved pos;
        t.alive_len <- last;
        Hashtbl.remove t.alive_index id

  let random_alive t =
    if t.alive_len = 0 then invalid_arg "Hashtbl_core.random_alive: empty";
    t.alive.(Prng.int t.rng t.alive_len)

  let random_alive_excluding t self =
    if t.alive_len = 0 then None
    else if t.alive_len = 1 && t.alive.(0) = self then None
    else begin
      let rec go () =
        let cand = t.alive.(Prng.int t.rng t.alive_len) in
        if cand = self then go () else cand
      in
      Some (go ())
    end

  let incr_in_edge target src =
    Hashtbl.replace target.in_edges src
      (1 + Option.value ~default:0 (Hashtbl.find_opt target.in_edges src))

  let decr_in_edge target src =
    match Hashtbl.find_opt target.in_edges src with
    | None -> ()
    | Some 1 -> Hashtbl.remove target.in_edges src
    | Some k -> Hashtbl.replace target.in_edges src (k - 1)

  let add_node t ~birth =
    let id = t.next_id in
    t.next_id <- id + 1;
    let node =
      { id; birth; out_slots = Array.make t.d (-1); in_edges = Hashtbl.create 8 }
    in
    for slot = 0 to t.d - 1 do
      match random_alive_excluding t id with
      | None -> ()
      | Some target_id ->
          node.out_slots.(slot) <- target_id;
          incr_in_edge (Hashtbl.find t.nodes target_id) id
    done;
    Hashtbl.replace t.nodes id node;
    alive_push t id;
    id

  let kill t id =
    let node = Hashtbl.find t.nodes id in
    alive_remove t id;
    Hashtbl.remove t.nodes id;
    Array.iter
      (fun target_id ->
        if target_id >= 0 then
          match Hashtbl.find_opt t.nodes target_id with
          | Some target -> decr_in_edge target id
          | None -> ())
      node.out_slots;
    let srcs = Hashtbl.fold (fun src _mult acc -> src :: acc) node.in_edges [] in
    let srcs = List.sort Int.compare srcs in
    List.iter
      (fun src_id ->
        match Hashtbl.find_opt t.nodes src_id with
        | None -> ()
        | Some src ->
            Array.iteri
              (fun slot target ->
                if target = id then begin
                  src.out_slots.(slot) <- -1;
                  if t.regenerate then
                    match random_alive_excluding t src_id with
                    | None -> ()
                    | Some fresh ->
                        src.out_slots.(slot) <- fresh;
                        incr_in_edge (Hashtbl.find t.nodes fresh) src_id
                end)
              src.out_slots)
      srcs

  let alive_ids t = Array.sub t.alive 0 t.alive_len

  let out_degree t id =
    let node = Hashtbl.find t.nodes id in
    Array.fold_left (fun acc s -> if s >= 0 then acc + 1 else acc) 0 node.out_slots

  let neighbors t id =
    let node = Hashtbl.find t.nodes id in
    let acc = ref [] in
    Array.iter (fun v -> if v >= 0 then acc := v :: !acc) node.out_slots;
    Hashtbl.iter (fun src _ -> acc := src :: !acc) node.in_edges;
    List.sort_uniq Int.compare !acc

  (* The old Dyngraph.snapshot up to (and including) building its
     structures: sorted ids, id->index hashtable, births, out-degrees
     and per-row sorted index arrays. *)
  let snapshot_arrays t =
    let ids = alive_ids t in
    Array.sort Int.compare ids;
    let n = Array.length ids in
    let index_of = Hashtbl.create (2 * n) in
    Array.iteri (fun i id -> Hashtbl.replace index_of id i) ids;
    let births = Array.map (fun id -> (Hashtbl.find t.nodes id).birth) ids in
    let out_deg = Array.map (fun id -> out_degree t id) ids in
    let adj =
      Array.map
        (fun id ->
          let neigh = neighbors t id in
          let arr = List.filter_map (fun v -> Hashtbl.find_opt index_of v) neigh in
          let arr = Array.of_list arr in
          Array.sort Int.compare arr;
          arr)
        ids
    in
    (ids, births, adj, out_deg)
end

module Json = Churnet_util.Json

let kernels_json_path =
  match Sys.getenv_opt "CHURNET_KERNELS_JSON" with
  | Some p -> p
  | None -> Printf.sprintf "KERNELS_%d_%s.json" seed (Scale.to_string scale)

let core_n = 2000
let core_d = 8
let core_jumps = Scale.pick scale ~smoke:30_000 ~standard:150_000 ~full:600_000
let snap_reps = Scale.pick scale ~smoke:30 ~standard:150 ~full:500

(* Words allocated so far: a monotone counter, exact regardless of when
   collections happen. *)
let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let timed_with_words f =
  let w0 = allocated_words () in
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  (dt, allocated_words () -. w0)

(* One churn jump = one uniform death (with regeneration) + one birth:
   population pinned at [core_n], so the workload is stationary and the
   two cores stay state-identical step for step. *)
let run_graph_core () =
  print_newline ();
  print_endline
    "==================== GRAPH CORE (slot arena vs hashtable) ====================";
  Printf.printf "n=%d d=%d, %d churn jumps, %d snapshot builds\n%!" core_n core_d
    core_jumps snap_reps;
  let core_seed = seed lxor 0x60aed in
  let old_g = Hashtbl_core.create ~rng:(Prng.create core_seed) ~d:core_d ~regenerate:true () in
  let new_g = Dyngraph.create ~rng:(Prng.create core_seed) ~d:core_d ~regenerate:true () in
  for i = 1 to core_n do
    ignore (Hashtbl_core.add_node old_g ~birth:i)
  done;
  for i = 1 to core_n do
    ignore (Dyngraph.add_node new_g ~birth:i)
  done;
  let old_dt, old_words =
    timed_with_words (fun () ->
        for i = 1 to core_jumps do
          Hashtbl_core.kill old_g (Hashtbl_core.random_alive old_g);
          ignore (Hashtbl_core.add_node old_g ~birth:(core_n + i))
        done)
  in
  let new_dt, new_words =
    timed_with_words (fun () ->
        for i = 1 to core_jumps do
          Dyngraph.kill new_g (Dyngraph.random_alive new_g);
          ignore (Dyngraph.add_node new_g ~birth:(core_n + i))
        done)
  in
  (* Identical draw sequences mean identical trajectories: check before
     trusting any timing. *)
  let old_ids = Hashtbl_core.alive_ids old_g in
  let new_ids = Dyngraph.alive_ids new_g in
  Array.sort Int.compare old_ids;
  Array.sort Int.compare new_ids;
  if old_ids <> new_ids then begin
    print_endline "  MISMATCH: hashtable and arena cores diverged!";
    exit 1
  end;
  print_endline "  cores state-identical after the jump script: OK";
  let jump_speedup = old_dt /. new_dt in
  let per_jump dt = dt *. 1e9 /. float_of_int core_jumps in
  let words_per_jump w = w /. float_of_int core_jumps in
  Printf.printf "  churn jump old (hashtbl core): %8.0f ns/jump, %7.1f words/jump\n"
    (per_jump old_dt) (words_per_jump old_words);
  Printf.printf "  churn jump new (slot arena):   %8.0f ns/jump, %7.1f words/jump\n"
    (per_jump new_dt) (words_per_jump new_words);
  Printf.printf "  churn-jump speedup: %.2fx%s\n" jump_speedup
    (if jump_speedup >= 2.0 then "" else "  (below the 2x target!)");
  let edge_sink = ref 0 in
  let old_snap_dt, old_snap_words =
    timed_with_words (fun () ->
        for _ = 1 to snap_reps do
          let _, _, adj, _ = Hashtbl_core.snapshot_arrays old_g in
          edge_sink := !edge_sink + Array.fold_left (fun a r -> a + Array.length r) 0 adj
        done)
  in
  let new_snap_dt, new_snap_words =
    timed_with_words (fun () ->
        for _ = 1 to snap_reps do
          let s = Dyngraph.snapshot new_g in
          edge_sink := !edge_sink + (2 * Churnet_graph.Snapshot.edge_count s)
        done)
  in
  let per_snap dt = dt *. 1e6 /. float_of_int snap_reps in
  let snap_speedup = old_snap_dt /. new_snap_dt in
  Printf.printf "  snapshot build old (adj arrays + id hashtable): %8.1f us\n"
    (per_snap old_snap_dt);
  Printf.printf "  snapshot build new (CSR, slot-indexed):         %8.1f us\n"
    (per_snap new_snap_dt);
  Printf.printf "  snapshot-build speedup: %.2fx  (directed half-edges seen: %d)\n"
    snap_speedup !edge_sink;
  let doc =
    Json.Obj
      [
        ("schema", Json.String "churnet-kernels/1");
        ("seed", Json.Int seed);
        ("scale", Json.String (Scale.to_string scale));
        ( "graph_core",
          Json.Obj
            [
              ("n", Json.Int core_n);
              ("d", Json.Int core_d);
              ("jumps", Json.Int core_jumps);
              ("snapshot_builds", Json.Int snap_reps);
              ("state_identical", Json.Bool true);
              ( "churn_jump",
                Json.Obj
                  [
                    ("old_ns_per_jump", Json.of_finite (per_jump old_dt));
                    ("new_ns_per_jump", Json.of_finite (per_jump new_dt));
                    ("speedup", Json.of_finite jump_speedup);
                    ("old_words_per_jump", Json.of_finite (words_per_jump old_words));
                    ("new_words_per_jump", Json.of_finite (words_per_jump new_words));
                  ] );
              ( "snapshot_build",
                Json.Obj
                  [
                    ("old_us_per_build", Json.of_finite (per_snap old_snap_dt));
                    ("new_us_per_build", Json.of_finite (per_snap new_snap_dt));
                    ("speedup", Json.of_finite snap_speedup);
                    ( "old_words_per_build",
                      Json.of_finite (old_snap_words /. float_of_int snap_reps) );
                    ( "new_words_per_build",
                      Json.of_finite (new_snap_words /. float_of_int snap_reps) );
                  ] );
            ] );
      ]
  in
  Json.write_file ~pretty:true kernels_json_path doc;
  Printf.printf "  wrote %s\n" kernels_json_path

let () =
  run_bechamel ();
  run_replication ();
  run_graph_core ()
