(* Kernel head-to-heads for the allocation-free simulation kernels and
   the deterministic multicore replication layer.

   Part 1 (Bechamel): old-vs-new [expand_informed] — the historical
   hashtable + list-returning-neighbors kernel (kept verbatim in
   [Bench_refs]) against [Flood.expand_informed] (bitset informed set +
   allocation-free neighbor iteration).

   Part 2 (wall clock): the E10 experiment (SDGR flooding completion)
   run serially (CHURNET_DOMAINS=1) and in parallel (CHURNET_DOMAINS=4),
   with the rendered reports compared byte-for-byte: the replication
   layer pre-splits one PRNG per trial, so the parallel run must be
   bit-identical to the serial one.

   Part 3 (wall clock + GC): the slot-arena graph core against the
   pre-arena hashtable core: churn-jump throughput, snapshot build, and
   words allocated per jump.  Both cores use the canonical regeneration
   order, so they consume the PRNG identically — the measurement asserts
   the final alive sets match before trusting the timings.

   Part 4 (wall clock + GC): the word-level [Bitset.iter] against the
   byte-at-a-time scan it replaced, and the frontier flooding driver
   ([Flood.expand_informed_frontier]) against full-rescan hops.

   Part 5 (wall clock + GC): the XL-tier kernels — the batched churn
   runner ([Poisson_model.run_rounds_batched]) against the per-jump
   [step] loop, checked byte-identical through the checkpoint encoding,
   and the streaming snapshot statistics ([Stream_stats.collect])
   against the materialize-CSR-then-derive path, checked field-equal
   (floats bitwise).  The process's peak RSS (VmHWM) is reported next to
   the timings.

   Parts 3-5 write their numbers to KERNELS_<seed>_<scale>.json
   (override with CHURNET_KERNELS_JSON); [compare.exe] measures the same
   kernels through the same [Bench_refs] harness and gates them against
   the blessed baselines in bench/baseline/.

   Scale via CHURNET_BENCH_SCALE=smoke|standard|full (default standard)
   and CHURNET_BENCH_SEED (default 42). *)

open Bechamel
open Bechamel.Toolkit
module Dyngraph = Churnet_graph.Dyngraph
module Models = Churnet_core.Models
module Flood = Churnet_core.Flood
module Registry = Churnet_experiments.Registry
module Report = Churnet_experiments.Report
module Scale = Churnet_experiments.Scale
module Prng = Churnet_util.Prng
module Bitset = Churnet_util.Bitset
module Intvec = Churnet_util.Intvec
module Refs = Bench_refs

let scale =
  match Sys.getenv_opt "CHURNET_BENCH_SCALE" with
  | Some s -> (
      match Scale.of_string s with
      | Some v -> v
      | None -> failwith (Printf.sprintf "bad CHURNET_BENCH_SCALE %S" s))
  | None -> Scale.Standard

let seed =
  match Sys.getenv_opt "CHURNET_BENCH_SEED" with
  | Some s -> int_of_string s
  | None -> 42

(* ------------------------------------------------------------------ *)
(* Part 1: old vs new expand_informed.                                 *)
(* ------------------------------------------------------------------ *)

let kernel_tests () =
  let n = 2000 and d = 8 in
  let m = Models.create ~rng:(Prng.create 9) Models.SDGR ~n ~d in
  Models.warm_up m;
  let graph = Models.graph m in
  let alive = Dyngraph.alive_ids graph in
  (* Seed informed sets of two sizes: a sparse one (the early rounds of a
     flood, informed-side scan) and a half-covered one (the late rounds,
     uninformed-side scan). *)
  let seed_set k = Array.sub alive 0 (max 1 (Array.length alive / k)) in
  let sparse = seed_set 50 in
  let half = seed_set 2 in
  let informed_bs = Bitset.create n in
  let scratch = Intvec.create ~capacity:1024 () in
  let new_hop seed_ids () =
    Bitset.clear informed_bs;
    Array.iter
      (fun id ->
        Bitset.ensure_capacity informed_bs (id + 1);
        Bitset.add informed_bs id)
      seed_ids;
    Flood.expand_informed graph informed_bs scratch;
    ignore (Bitset.cardinal informed_bs)
  in
  let old_hop seed_ids () =
    let informed = Hashtbl.create 1024 in
    Array.iter (fun id -> Hashtbl.replace informed id ()) seed_ids;
    Refs.old_expand_informed graph informed;
    ignore (Hashtbl.length informed)
  in
  [
    Test.make ~name:"expand sparse old (hashtbl+lists)" (Staged.stage (old_hop sparse));
    Test.make ~name:"expand sparse new (bitset+iters)" (Staged.stage (new_hop sparse));
    Test.make ~name:"expand half old (hashtbl+lists)" (Staged.stage (old_hop half));
    Test.make ~name:"expand half new (bitset+iters)" (Staged.stage (new_hop half));
  ]

let run_bechamel () =
  print_endline "==================== KERNELS (Bechamel) ====================";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let grouped = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (kernel_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  let table = Churnet_util.Table.create [ "benchmark"; "time per run" ] in
  (match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None -> ()
  | Some by_name ->
      let rows =
        Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) by_name []
      in
      let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
      List.iter
        (fun (name, ols_result) ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) ->
                if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
                else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
                else Printf.sprintf "%.0f ns" t
            | _ -> "n/a"
          in
          Churnet_util.Table.add_row table [ name; estimate ])
        rows);
  Churnet_util.Table.print table

(* ------------------------------------------------------------------ *)
(* Part 2: serial vs parallel E10, bit-identical by construction.      *)
(* ------------------------------------------------------------------ *)

let run_e10 ~domains =
  Unix.putenv "CHURNET_DOMAINS" (string_of_int domains);
  let entry =
    match Registry.find "E10" with Some e -> e | None -> failwith "E10 not registered"
  in
  let t0 = Unix.gettimeofday () in
  let report = entry.Registry.run ~seed ~scale in
  let dt = Unix.gettimeofday () -. t0 in
  (Report.render report, dt)

let run_replication () =
  print_newline ();
  print_endline "==================== REPLICATION (E10 serial vs parallel) ====================";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "scale %s, seed %d, %d core(s) available\n%!" (Scale.to_string scale)
    seed cores;
  let serial_render, serial_dt = run_e10 ~domains:1 in
  Printf.printf "  CHURNET_DOMAINS=1: %.2fs\n%!" serial_dt;
  let par_render, par_dt = run_e10 ~domains:4 in
  Printf.printf "  CHURNET_DOMAINS=4: %.2fs\n%!" par_dt;
  Printf.printf "  speedup: %.2fx%s\n" (serial_dt /. par_dt)
    (if cores < 2 then " (single-core host: no wall-clock gain expected)" else "");
  if String.equal serial_render par_render then
    print_endline "  reports bit-identical across domain counts: OK"
  else begin
    print_endline "  MISMATCH: serial and parallel E10 reports differ!";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Parts 3 + 4: measured kernels, shared with compare.exe.             *)
(* ------------------------------------------------------------------ *)

module Json = Churnet_util.Json

let kernels_json_path =
  match Sys.getenv_opt "CHURNET_KERNELS_JSON" with
  | Some p -> p
  | None -> Printf.sprintf "KERNELS_%d_%s.json" seed (Scale.to_string scale)

let run_graph_core () =
  print_newline ();
  print_endline
    "==================== GRAPH CORE (slot arena vs hashtable) ====================";
  let c = Refs.measure_graph_core ~seed ~scale in
  Printf.printf "n=%d d=%d, %d churn jumps, %d snapshot builds\n%!" Refs.core_n
    Refs.core_d c.Refs.jumps c.Refs.builds;
  print_endline "  cores state-identical after the jump script: OK";
  let jump_speedup = c.Refs.churn_old_dt /. c.Refs.churn_new_dt in
  Printf.printf "  churn jump old (hashtbl core): %8.0f ns/jump, %7.1f words/jump\n"
    (Refs.per_jump_ns c c.Refs.churn_old_dt)
    (Refs.words_per_jump c c.Refs.churn_old_words);
  Printf.printf "  churn jump new (slot arena):   %8.0f ns/jump, %7.1f words/jump\n"
    (Refs.per_jump_ns c c.Refs.churn_new_dt)
    (Refs.words_per_jump c c.Refs.churn_new_words);
  Printf.printf "  churn-jump speedup: %.2fx%s\n" jump_speedup
    (if jump_speedup >= 2.0 then "" else "  (below the 2x target!)");
  let snap_speedup = c.Refs.snap_old_dt /. c.Refs.snap_new_dt in
  Printf.printf "  snapshot build old (adj arrays + id hashtable): %8.1f us\n"
    (Refs.per_build_us c c.Refs.snap_old_dt);
  Printf.printf "  snapshot build new (CSR, slot-indexed):         %8.1f us\n"
    (Refs.per_build_us c c.Refs.snap_new_dt);
  Printf.printf "  snapshot-build speedup: %.2fx  (directed half-edges seen: %d)\n"
    snap_speedup c.Refs.edge_sink;
  c

let run_scan_kernels () =
  print_newline ();
  print_endline
    "==================== BITSET SCAN (word-level vs byte-at-a-time) ====================";
  let s = Refs.measure_bitset_scan ~seed ~scale in
  Printf.printf "%d bits, sparse (1/64) + half-full populations, %d scans/side\n%!"
    s.Refs.bits s.Refs.scans;
  let speedup = s.Refs.scan_old_dt /. s.Refs.scan_new_dt in
  Printf.printf "  scan old (byte-at-a-time): %8.1f us/scan\n"
    (Refs.per_scan_us s s.Refs.scan_old_dt);
  Printf.printf "  scan new (word-level):     %8.1f us/scan\n"
    (Refs.per_scan_us s s.Refs.scan_new_dt);
  Printf.printf "  bitset-scan speedup: %.2fx  (visit-order checksum: %d)\n" speedup
    s.Refs.scan_sink;
  s

let run_flood_kernels () =
  print_newline ();
  print_endline
    "==================== FLOOD HOP (frontier vs full rescan) ====================";
  let f = Refs.measure_flood_hop ~seed ~scale in
  Printf.printf "SDG n=%d d=%d, %d complete floods under churn, %d rounds total\n%!"
    Refs.core_n Refs.flood_d f.Refs.floods f.Refs.total_hops;
  print_endline "  frontier and full-rescan floods informed identical sets: OK";
  let speedup = f.Refs.flood_old_dt /. f.Refs.flood_new_dt in
  Printf.printf "  flood hop old (full rescan): %8.0f ns/hop, %7.1f words/hop\n"
    (Refs.per_hop_ns f f.Refs.flood_old_dt)
    (Refs.words_per_hop f f.Refs.flood_old_words);
  Printf.printf "  flood hop new (frontier):    %8.0f ns/hop, %7.1f words/hop\n"
    (Refs.per_hop_ns f f.Refs.flood_new_dt)
    (Refs.words_per_hop f f.Refs.flood_new_words);
  Printf.printf "  flood-hop speedup: %.2fx\n" speedup;
  f

let run_batched_kernels () =
  print_newline ();
  print_endline
    "==================== BATCHED CHURN (bulk draws vs per-jump) ====================";
  let b = Refs.measure_churn_batched ~seed ~scale in
  Printf.printf "PDGR n=%d d=%d, %d churn jumps/side\n%!" Refs.batched_n Refs.batched_d
    b.Refs.bjumps;
  print_endline "  batched and per-jump models byte-identical (checkpoint encoding): OK";
  let speedup = b.Refs.batched_old_dt /. b.Refs.batched_new_dt in
  Printf.printf "  churn old (per-jump step):  %8.0f ns/jump, %7.1f words/jump\n"
    (Refs.per_bjump_ns b b.Refs.batched_old_dt)
    (Refs.words_per_bjump b b.Refs.batched_old_words);
  Printf.printf "  churn new (batched draws):  %8.0f ns/jump, %7.1f words/jump\n"
    (Refs.per_bjump_ns b b.Refs.batched_new_dt)
    (Refs.words_per_bjump b b.Refs.batched_new_words);
  Printf.printf "  batched-churn speedup: %.2fx\n" speedup;
  b

let run_stream_kernels () =
  print_newline ();
  print_endline
    "==================== STREAM STATS (arena pass vs CSR) ====================";
  let st = Refs.measure_stream_stats ~seed ~scale in
  Printf.printf "PDG n=%d d=%d, %d statistics passes/side\n%!" Refs.core_n Refs.batched_d
    st.Refs.stat_reps;
  print_endline "  streaming and CSR statistics field-identical (floats bitwise): OK";
  let speedup = st.Refs.stream_old_dt /. st.Refs.stream_new_dt in
  Printf.printf "  stats old (CSR snapshot + derive): %8.1f us/pass, %9.1f words/pass\n"
    (Refs.per_stat_us st st.Refs.stream_old_dt)
    (st.Refs.stream_old_words /. float_of_int st.Refs.stat_reps);
  Printf.printf "  stats new (streaming collect):     %8.1f us/pass, %9.1f words/pass\n"
    (Refs.per_stat_us st st.Refs.stream_new_dt)
    (st.Refs.stream_new_words /. float_of_int st.Refs.stat_reps);
  Printf.printf "  stream-stats speedup: %.2fx  (isolated-count checksum: %d)\n" speedup
    st.Refs.stat_sink;
  st

let write_json c s f b st =
  let fields =
      [
        ("schema", Json.String "churnet-kernels/1");
        ("seed", Json.Int seed);
        ("scale", Json.String (Scale.to_string scale));
        ( "graph_core",
          Json.Obj
            [
              ("n", Json.Int Refs.core_n);
              ("d", Json.Int Refs.core_d);
              ("jumps", Json.Int c.Refs.jumps);
              ("snapshot_builds", Json.Int c.Refs.builds);
              ("state_identical", Json.Bool true);
              ( "churn_jump",
                Json.Obj
                  [
                    ("old_ns_per_jump", Json.of_finite (Refs.per_jump_ns c c.Refs.churn_old_dt));
                    ("new_ns_per_jump", Json.of_finite (Refs.per_jump_ns c c.Refs.churn_new_dt));
                    ("speedup", Json.of_finite (c.Refs.churn_old_dt /. c.Refs.churn_new_dt));
                    ( "old_words_per_jump",
                      Json.of_finite (Refs.words_per_jump c c.Refs.churn_old_words) );
                    ( "new_words_per_jump",
                      Json.of_finite (Refs.words_per_jump c c.Refs.churn_new_words) );
                  ] );
              ( "snapshot_build",
                Json.Obj
                  [
                    ("old_us_per_build", Json.of_finite (Refs.per_build_us c c.Refs.snap_old_dt));
                    ("new_us_per_build", Json.of_finite (Refs.per_build_us c c.Refs.snap_new_dt));
                    ("speedup", Json.of_finite (c.Refs.snap_old_dt /. c.Refs.snap_new_dt));
                    ( "old_words_per_build",
                      Json.of_finite (c.Refs.snap_old_words /. float_of_int c.Refs.builds) );
                    ( "new_words_per_build",
                      Json.of_finite (c.Refs.snap_new_words /. float_of_int c.Refs.builds) );
                  ] );
            ] );
        ( "bitset_scan",
          Json.Obj
            [
              ("bits", Json.Int s.Refs.bits);
              ("scans_per_side", Json.Int s.Refs.scans);
              ("old_us_per_scan", Json.of_finite (Refs.per_scan_us s s.Refs.scan_old_dt));
              ("new_us_per_scan", Json.of_finite (Refs.per_scan_us s s.Refs.scan_new_dt));
              ("speedup", Json.of_finite (s.Refs.scan_old_dt /. s.Refs.scan_new_dt));
              ("visit_order_identical", Json.Bool true);
            ] );
        ( "flood_hop",
          Json.Obj
            [
              ("n", Json.Int Refs.core_n);
              ("d", Json.Int Refs.flood_d);
              ("floods", Json.Int f.Refs.floods);
              ("total_hops", Json.Int f.Refs.total_hops);
              ("old_ns_per_hop", Json.of_finite (Refs.per_hop_ns f f.Refs.flood_old_dt));
              ("new_ns_per_hop", Json.of_finite (Refs.per_hop_ns f f.Refs.flood_new_dt));
              ("speedup", Json.of_finite (f.Refs.flood_old_dt /. f.Refs.flood_new_dt));
              ( "old_words_per_hop",
                Json.of_finite (Refs.words_per_hop f f.Refs.flood_old_words) );
              ( "new_words_per_hop",
                Json.of_finite (Refs.words_per_hop f f.Refs.flood_new_words) );
              ("informed_sets_identical", Json.Bool true);
            ] );
        ( "churn_batched",
          Json.Obj
            [
              ("n", Json.Int Refs.batched_n);
              ("d", Json.Int Refs.batched_d);
              ("jumps", Json.Int b.Refs.bjumps);
              ("old_ns_per_jump", Json.of_finite (Refs.per_bjump_ns b b.Refs.batched_old_dt));
              ("new_ns_per_jump", Json.of_finite (Refs.per_bjump_ns b b.Refs.batched_new_dt));
              ("speedup", Json.of_finite (b.Refs.batched_old_dt /. b.Refs.batched_new_dt));
              ( "old_words_per_jump",
                Json.of_finite (Refs.words_per_bjump b b.Refs.batched_old_words) );
              ( "new_words_per_jump",
                Json.of_finite (Refs.words_per_bjump b b.Refs.batched_new_words) );
              ("state_identical", Json.Bool true);
            ] );
        ( "stream_stats",
          Json.Obj
            [
              ("n", Json.Int Refs.core_n);
              ("d", Json.Int Refs.batched_d);
              ("reps", Json.Int st.Refs.stat_reps);
              ("old_us_per_stat", Json.of_finite (Refs.per_stat_us st st.Refs.stream_old_dt));
              ("new_us_per_stat", Json.of_finite (Refs.per_stat_us st st.Refs.stream_new_dt));
              ("speedup", Json.of_finite (st.Refs.stream_old_dt /. st.Refs.stream_new_dt));
              ( "old_words_per_stat",
                Json.of_finite (st.Refs.stream_old_words /. float_of_int st.Refs.stat_reps) );
              ( "new_words_per_stat",
                Json.of_finite (st.Refs.stream_new_words /. float_of_int st.Refs.stat_reps) );
              ("stats_identical", Json.Bool true);
            ] );
      ]
      @
      match Churnet_experiments.Telemetry.peak_rss_kb () with
      | Some kb -> [ ("peak_rss_kb", Json.Int kb) ]
      | None -> []
  in
  let doc = Json.Obj fields in
  Json.write_file ~pretty:true kernels_json_path doc;
  Printf.printf "  wrote %s\n" kernels_json_path

let () =
  run_bechamel ();
  run_replication ();
  let c = run_graph_core () in
  let s = run_scan_kernels () in
  let f = run_flood_kernels () in
  let b = run_batched_kernels () in
  let st = run_stream_kernels () in
  write_json c s f b st
