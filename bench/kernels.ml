(* Kernel head-to-heads for the allocation-free simulation kernels and
   the deterministic multicore replication layer.

   Part 1 (Bechamel): old-vs-new [expand_informed] — the historical
   hashtable + list-returning-neighbors kernel (kept verbatim below as
   the baseline) against [Flood.expand_informed] (bitset informed set +
   allocation-free neighbor iteration).

   Part 2 (wall clock): the E10 experiment (SDGR flooding completion)
   run serially (CHURNET_DOMAINS=1) and in parallel (CHURNET_DOMAINS=4),
   with the rendered reports compared byte-for-byte: the replication
   layer pre-splits one PRNG per trial, so the parallel run must be
   bit-identical to the serial one.

   Scale via CHURNET_BENCH_SCALE=smoke|standard|full (default standard)
   and CHURNET_BENCH_SEED (default 42). *)

open Bechamel
open Bechamel.Toolkit
module Dyngraph = Churnet_graph.Dyngraph
module Models = Churnet_core.Models
module Flood = Churnet_core.Flood
module Registry = Churnet_experiments.Registry
module Report = Churnet_experiments.Report
module Scale = Churnet_experiments.Scale
module Prng = Churnet_util.Prng
module Bitset = Churnet_util.Bitset
module Intvec = Churnet_util.Intvec

let scale =
  match Sys.getenv_opt "CHURNET_BENCH_SCALE" with
  | Some s -> (
      match Scale.of_string s with
      | Some v -> v
      | None -> failwith (Printf.sprintf "bad CHURNET_BENCH_SCALE %S" s))
  | None -> Scale.Standard

let seed =
  match Sys.getenv_opt "CHURNET_BENCH_SEED" with
  | Some s -> int_of_string s
  | None -> 42

(* ------------------------------------------------------------------ *)
(* Part 1: old vs new expand_informed.                                 *)
(* ------------------------------------------------------------------ *)

(* The pre-optimization kernel, verbatim: hashtable informed set,
   list-returning neighbor queries, a fresh [newly] list per hop. *)
let old_expand_informed graph informed =
  let alive = Dyngraph.alive_count graph in
  let informed_alive = ref 0 in
  Hashtbl.iter
    (fun id () -> if Dyngraph.is_alive graph id then incr informed_alive)
    informed;
  let newly = ref [] in
  if !informed_alive <= alive - !informed_alive then
    Hashtbl.iter
      (fun u () ->
        if Dyngraph.is_alive graph u then
          List.iter
            (fun v -> if not (Hashtbl.mem informed v) then newly := v :: !newly)
            (Dyngraph.neighbors graph u))
      informed
  else
    Dyngraph.iter_alive graph (fun v ->
        if not (Hashtbl.mem informed v) then
          let touches_informed =
            List.exists
              (fun u -> Hashtbl.mem informed u)
              (Dyngraph.neighbors graph v)
          in
          if touches_informed then newly := v :: !newly);
  List.iter (fun v -> Hashtbl.replace informed v ()) !newly

let kernel_tests () =
  let n = 2000 and d = 8 in
  let m = Models.create ~rng:(Prng.create 9) Models.SDGR ~n ~d in
  Models.warm_up m;
  let graph = Models.graph m in
  let alive = Dyngraph.alive_ids graph in
  (* Seed informed sets of two sizes: a sparse one (the early rounds of a
     flood, informed-side scan) and a half-covered one (the late rounds,
     uninformed-side scan). *)
  let seed_set k = Array.sub alive 0 (max 1 (Array.length alive / k)) in
  let sparse = seed_set 50 in
  let half = seed_set 2 in
  let informed_bs = Bitset.create n in
  let scratch = Intvec.create ~capacity:1024 () in
  let new_hop seed_ids () =
    Bitset.clear informed_bs;
    Array.iter
      (fun id ->
        Bitset.ensure_capacity informed_bs (id + 1);
        Bitset.add informed_bs id)
      seed_ids;
    Flood.expand_informed graph informed_bs scratch;
    ignore (Bitset.cardinal informed_bs)
  in
  let old_hop seed_ids () =
    let informed = Hashtbl.create 1024 in
    Array.iter (fun id -> Hashtbl.replace informed id ()) seed_ids;
    old_expand_informed graph informed;
    ignore (Hashtbl.length informed)
  in
  [
    Test.make ~name:"expand sparse old (hashtbl+lists)" (Staged.stage (old_hop sparse));
    Test.make ~name:"expand sparse new (bitset+iters)" (Staged.stage (new_hop sparse));
    Test.make ~name:"expand half old (hashtbl+lists)" (Staged.stage (old_hop half));
    Test.make ~name:"expand half new (bitset+iters)" (Staged.stage (new_hop half));
  ]

let run_bechamel () =
  print_endline "==================== KERNELS (Bechamel) ====================";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let grouped = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (kernel_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  let table = Churnet_util.Table.create [ "benchmark"; "time per run" ] in
  (match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None -> ()
  | Some by_name ->
      let rows =
        Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) by_name []
      in
      let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
      List.iter
        (fun (name, ols_result) ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) ->
                if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
                else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
                else Printf.sprintf "%.0f ns" t
            | _ -> "n/a"
          in
          Churnet_util.Table.add_row table [ name; estimate ])
        rows);
  Churnet_util.Table.print table

(* ------------------------------------------------------------------ *)
(* Part 2: serial vs parallel E10, bit-identical by construction.      *)
(* ------------------------------------------------------------------ *)

let run_e10 ~domains =
  Unix.putenv "CHURNET_DOMAINS" (string_of_int domains);
  let entry =
    match Registry.find "E10" with Some e -> e | None -> failwith "E10 not registered"
  in
  let t0 = Unix.gettimeofday () in
  let report = entry.Registry.run ~seed ~scale in
  let dt = Unix.gettimeofday () -. t0 in
  (Report.render report, dt)

let run_replication () =
  print_newline ();
  print_endline "==================== REPLICATION (E10 serial vs parallel) ====================";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "scale %s, seed %d, %d core(s) available\n%!" (Scale.to_string scale)
    seed cores;
  let serial_render, serial_dt = run_e10 ~domains:1 in
  Printf.printf "  CHURNET_DOMAINS=1: %.2fs\n%!" serial_dt;
  let par_render, par_dt = run_e10 ~domains:4 in
  Printf.printf "  CHURNET_DOMAINS=4: %.2fs\n%!" par_dt;
  Printf.printf "  speedup: %.2fx%s\n" (serial_dt /. par_dt)
    (if cores < 2 then " (single-core host: no wall-clock gain expected)" else "");
  if String.equal serial_render par_render then
    print_endline "  reports bit-identical across domain counts: OK"
  else begin
    print_endline "  MISMATCH: serial and parallel E10 reports differ!";
    exit 1
  end

let () =
  run_bechamel ();
  run_replication ()
