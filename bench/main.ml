(* The benchmark harness.

   Part 1 regenerates the paper's results: every cell of Table 1 (the
   paper's only table — experiments E1-E12), the derived figures F1-F14,
   the extension studies X1-X3/A1 and the theory checks T1/R1, each
   printed as a paper-vs-measured report with its tables and ASCII
   charts.  Scale via CHURNET_BENCH_SCALE=smoke|standard|full
   (default standard) and CHURNET_BENCH_SEED (default 42).

   Part 2 times the core primitives with Bechamel: one Test.make per
   experiment family, measuring the operation that dominates that
   table/figure's runtime. *)

open Bechamel
open Bechamel.Toolkit
module Registry = Churnet_experiments.Registry
module Report = Churnet_experiments.Report
module Scale = Churnet_experiments.Scale
module Telemetry = Churnet_experiments.Telemetry
module Json = Churnet_util.Json
module Models = Churnet_core.Models
module Prng = Churnet_util.Prng

let scale =
  match Sys.getenv_opt "CHURNET_BENCH_SCALE" with
  | Some s -> (
      match Scale.of_string s with
      | Some v -> v
      | None -> failwith (Printf.sprintf "bad CHURNET_BENCH_SCALE %S" s))
  | None -> Scale.Standard

let seed =
  match Sys.getenv_opt "CHURNET_BENCH_SEED" with
  | Some s -> int_of_string s
  | None -> 42

(* Validate CHURNET_DOMAINS up front (raises on a malformed value) so a
   typo fails the run immediately rather than at the first parallel
   experiment.  Thanks to deterministic pre-splitting every experiment is
   bit-identical whatever this is set to. *)
let domains = Churnet_util.Parallel.domains_from_env ()

(* Where the machine-readable trajectory goes: per-experiment wall time
   and GC deltas, every check, and the Bechamel estimates — one file per
   (seed, scale) so runs are diffable across commits. *)
let bench_json_path =
  match Sys.getenv_opt "CHURNET_BENCH_JSON" with
  | Some p -> p
  | None -> Printf.sprintf "BENCH_%d_%s.json" seed (Scale.to_string scale)

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate Table 1 and the figures.                         *)
(* ------------------------------------------------------------------ *)

let run_experiments () =
  Printf.printf
    "churnet benchmark harness — scale %s, seed %d, %d domain(s)\n\
     Regenerating Table 1 (E1-E12), figures (F1-F14), extensions\n\
     (X1-X3, A1) and theory checks (T1, R1).\n%!"
    (Scale.to_string scale) seed domains;
  let timed =
    List.map
      (fun (e : Registry.entry) ->
        Printf.printf "... %s %s\n%!" e.id e.title;
        let (r, tm) =
          Telemetry.measure ~seed ~scale ~domains (fun () -> e.run ~seed ~scale)
        in
        Printf.printf "    done in %.1fs\n%!" tm.Telemetry.wall_seconds;
        (r, tm))
      Registry.all
  in
  let reports = List.map fst timed in
  List.iter (fun r -> print_string (Report.render r)) reports;
  print_newline ();
  print_endline "==================== SUMMARY ====================";
  Churnet_util.Table.print (Registry.summary reports);
  let failed = List.filter (fun r -> not (Report.all_hold r)) reports in
  (if failed = [] then print_endline "All paper-direction checks hold."
   else
     Printf.printf "%d experiment(s) with failing checks: %s\n" (List.length failed)
       (String.concat ", " (List.map (fun (r : Report.t) -> r.id) failed)));
  timed

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks of the core primitives.           *)
(* ------------------------------------------------------------------ *)

let make_model kind ~n ~d =
  let m = Models.create ~rng:(Prng.create 9) kind ~n ~d in
  Models.warm_up m;
  m

(* One Test.make per experiment family: the dominating primitive. *)
let tests () =
  let n = 2000 and d = 8 in
  let sdg = make_model Models.SDG ~n ~d in
  let sdgr = make_model Models.SDGR ~n ~d in
  let pdg = make_model Models.PDG ~n ~d in
  let pdgr = make_model Models.PDGR ~n ~d in
  let snap_model = make_model Models.SDGR ~n ~d in
  let snap = Models.snapshot snap_model in
  let probe_rng = Prng.create 17 in
  let flood_model = make_model Models.SDGR ~n ~d:21 in
  let onion_rng = Prng.create 19 in
  let btc = Churnet_p2p.Bitcoin_like.create ~rng:(Prng.create 23) ~n () in
  Churnet_p2p.Bitcoin_like.warm_up btc;
  [
    (* E1/E2/F3 are dominated by churn rounds of the plain models. *)
    Test.make ~name:"E1+F3 SDG churn round" (Staged.stage (fun () -> Models.advance sdg 1));
    Test.make ~name:"E2 PDG churn unit-time" (Staged.stage (fun () -> Models.advance pdg 1));
    (* E5/E10: regenerating streaming model. *)
    Test.make ~name:"E5+E10 SDGR churn round" (Staged.stage (fun () -> Models.advance sdgr 1));
    (* E6/E11: regenerating Poisson model. *)
    Test.make ~name:"E6+E11 PDGR churn unit-time"
      (Staged.stage (fun () -> Models.advance pdgr 1));
    (* E3-E6/F6/F7: snapshot extraction + expansion probing. *)
    Test.make ~name:"E3-E6 snapshot build"
      (Staged.stage (fun () -> ignore (Models.snapshot snap_model)));
    Test.make ~name:"F6 expansion of one random set"
      (Staged.stage (fun () ->
           let size = 200 in
           let idx =
             Prng.sample_without_replacement probe_rng size
               (Churnet_graph.Snapshot.n snap)
           in
           let set = Churnet_graph.Snapshot.set_of_indices snap idx in
           ignore (Churnet_graph.Snapshot.expansion snap set)));
    (* E7-E11/F1/F2: one full flood. *)
    Test.make ~name:"E10+F1 full SDGR flood n=2000"
      (Staged.stage (fun () -> ignore (Models.flood flood_model)));
    (* F5: one onion-skin realization. *)
    Test.make ~name:"F5 onion-skin run n=20000 d=100"
      (Staged.stage (fun () ->
           ignore (Churnet_core.Onion.run ~rng:(Prng.split onion_rng) ~n:20000 ~d:100 ())));
    (* E12/F9: graph-free churn jump. *)
    Test.make ~name:"E12+F9 Poisson churn decide"
      (let churn = Churnet_churn.Poisson_churn.create ~rng:(Prng.create 29) ~n:2000 () in
       Staged.stage (fun () ->
           ignore (Churnet_churn.Poisson_churn.decide churn ~alive:2000)));
    (* F10: Bitcoin-like maintenance step. *)
    Test.make ~name:"F10 bitcoin-like churn step"
      (Staged.stage (fun () -> Churnet_p2p.Bitcoin_like.step btc));
    (* F4/F8: degree/slot accounting. *)
    Test.make ~name:"F4+F8 degree census"
      (Staged.stage (fun () ->
           let g = Models.graph sdgr in
           let acc = ref 0 in
           Churnet_graph.Dyngraph.iter_alive g (fun id ->
               acc := !acc + Churnet_graph.Dyngraph.out_degree g id);
           ignore !acc));
  ]

let run_bechamel () =
  print_newline ();
  print_endline "==================== MICRO-BENCHMARKS (Bechamel) ====================";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let grouped = Test.make_grouped ~name:"churnet" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  let estimates =
    match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
    | None -> []
    | Some by_name ->
        let rows =
          Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) by_name []
        in
        let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
        List.map
          (fun (name, ols_result) ->
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> (name, Some t)
            | _ -> (name, None))
          rows
  in
  let table = Churnet_util.Table.create [ "benchmark"; "time per run" ] in
  List.iter
    (fun (name, ns) ->
      let estimate =
        match ns with
        | Some t ->
            if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
            else Printf.sprintf "%.0f ns" t
        | None -> "n/a"
      in
      Churnet_util.Table.add_row table [ name; estimate ])
    estimates;
  Churnet_util.Table.print table;
  estimates

(* ------------------------------------------------------------------ *)
(* The machine-readable trajectory: BENCH_<seed>_<scale>.json.         *)
(* ------------------------------------------------------------------ *)

let write_bench_json timed estimates =
  let doc =
    Json.Obj
      [
        ("schema", Json.String "churnet-bench/1");
        ("seed", Json.Int seed);
        ("scale", Json.String (Scale.to_string scale));
        ("domains", Json.Int domains);
        ( "experiments",
          Json.Arr
            (List.map (fun (r, tm) -> Report.to_json ~telemetry:tm r) timed) );
        ( "microbenchmarks",
          Json.Arr
            (List.map
               (fun (name, ns) ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ("ns_per_run", Json.float_opt ns);
                   ])
               estimates) );
      ]
  in
  Json.write_file ~pretty:true bench_json_path doc;
  Printf.printf "\nwrote %s\n" bench_json_path

let () =
  let timed = run_experiments () in
  let estimates = run_bechamel () in
  write_bench_json timed estimates
